#include "core/core_base.hh"

#include <cmath>

#include "common/log.hh"
#include "core/report.hh"
#include "obs/layout_profile.hh"
#include "snapshot/snapshot.hh"

namespace flywheel {

namespace {

/**
 * Snapshot codec for one in-flight instruction: the architectural
 * DynInst followed by every microarchitectural field, in fixed
 * positional order (the snapshot format version gates changes).
 * Field-by-field because InFlightInst has padding bytes.
 */
void
inflightToBin(BinWriter &w, const InFlightInst &i)
{
    dynInstToBin(w, i.arch);
    w.u16(i.destPhys);
    w.u16(i.oldDestPhys);
    w.u16(i.src1Phys);
    w.u16(i.src2Phys);
    w.u16(i.poolPrevSlot);
    w.u64(i.dispatchReady);
    w.u64(i.iwVisible);
    w.u64(i.issueTick);
    w.u64(i.completeTick);
    w.b(i.inIw);
    w.u32(i.iwPos);
    w.b(i.issued);
    w.b(i.completed);
    w.b(i.squashed);
    w.b(i.mispredicted);
    w.b(i.predictedTaken);
    w.b(i.btbMissBubble);
    w.u16(i.historyAtPredict);
    w.b(i.fromEc);
    w.u32(i.traceRank);
}

InFlightInst
inflightFromBin(BinReader &r)
{
    InFlightInst i;
    i.arch = dynInstFromBin(r);
    i.destPhys = static_cast<PhysReg>(r.u16());
    i.oldDestPhys = static_cast<PhysReg>(r.u16());
    i.src1Phys = static_cast<PhysReg>(r.u16());
    i.src2Phys = static_cast<PhysReg>(r.u16());
    i.poolPrevSlot = r.u16();
    i.dispatchReady = r.u64();
    i.iwVisible = r.u64();
    i.issueTick = r.u64();
    i.completeTick = r.u64();
    i.inIw = r.b();
    i.iwPos = r.u32();
    i.issued = r.b();
    i.completed = r.b();
    i.squashed = r.b();
    i.mispredicted = r.b();
    i.predictedTaken = r.b();
    i.btbMissBubble = r.b();
    i.historyAtPredict = r.u16();
    i.fromEc = r.b();
    i.traceRank = r.u32();
    return i;
}

void
instRingToBin(BinWriter &w, const ArenaRing<InFlightInst> &q)
{
    w.u64(q.size());
    for (const InFlightInst &i : q)
        inflightToBin(w, i);
}

void
instRingFromBin(BinReader &r, ArenaRing<InFlightInst> *out)
{
    out->clear();
    const std::uint64_t count = r.u64();
    FW_ASSERT(count <= out->capacity(),
              "instruction-queue snapshot exceeds configured capacity");
    for (std::uint64_t i = 0; i < count; ++i)
        out->push_back(inflightFromBin(r));
}

} // namespace

CoreBase::CoreBase(const CoreParams &params, WorkloadStream &stream,
                   unsigned phys_regs)
    : params_(params),
      stream_(stream),
      hier_(arena_, params.mem),
      gshare_(arena_, params.bpred),
      btb_(arena_, params.btb),
      fus_(arena_, params.fus, params.lat),
      lsq_(arena_, params.lsqEntries),
      iw_(arena_, params.iwEntries),
      rob_(arena_, params.robEntries),
      feQueue_(arena_,
               static_cast<std::size_t>(params.feStages - 1 +
                                        params.extraFrontEndStages + 2) *
                   params.fetchWidth),
      regReady_(arena_),
      issuedPending_(arena_)
{
    regReady_.assign(phys_regs, 0);
    feDepth_ = params_.feStages - 1 + params_.extraFrontEndStages;
    feQueueCap_ = static_cast<std::size_t>(feDepth_ + 2) *
                  params_.fetchWidth;
    memTicks_ = static_cast<Tick>(std::llround(
        params_.mem.memBaselineCycles * params_.basePeriodPs));
    // Invariant per-run values, hoisted out of the per-cycle loop.
    l2StallTicks_ = static_cast<Tick>(std::llround(
        params_.mem.l2Cycles * params_.basePeriodPs));
    progressHorizonTicks_ =
        static_cast<Tick>(500000.0 * params_.basePeriodPs);
    issuedPending_.reserve(params_.robEntries);

    // One stat per CoreStats field, expanded from the same X-macro
    // that guards serialization, so new fields surface automatically.
    obs::StatsGroup &core = statsRegistry_.group("core");
#define X(f) core.counter(#f, &stats_.f);
    FW_CORE_STATS_FIELDS(X)
#undef X
    core.formula("mispredictRate", [this] {
        return stats_.condBranches
                   ? double(stats_.mispredicts) /
                         double(stats_.condBranches)
                   : 0.0;
    });
    hier_.registerStats(statsRegistry_, "core");
    gshare_.registerStats(statsRegistry_.group("core.gshare"));
    btb_.registerStats(statsRegistry_.group("core.btb"));
    lsq_.registerStats(statsRegistry_.group("core.lsq"));
    iw_.registerStats(statsRegistry_.group("core.iw"));
}

bool
CoreBase::fetchGate(Addr, Tick)
{
    return true;
}

void
CoreBase::onIssueGroup(const std::vector<InFlightInst *> &, Tick)
{}

void
CoreBase::onMispredictResolved(InFlightInst &, Tick now)
{
    // Redirect reaches Fetch for the next cycle; the subclass run
    // loop samples fetchStallUntil_ at front-end clock edges.
    waitingOnMispredict_ = false;
    resumeFetch(now + 1);
}

void
CoreBase::onRetire(InFlightInst &, Tick)
{}

void
CoreBase::stepFetch(Tick now, Tick fe_period)
{
    if (now < fetchStallUntil_ || waitingOnMispredict_)
        return;
    if (feQueue_.size() + params_.fetchWidth > feQueueCap_)
        return;

    unsigned fetched = 0;
    Addr group_pc = 0;
    for (unsigned w = 0; w < params_.fetchWidth; ++w) {
        const DynInst &next = stream_.peek(0);
        const Addr pc = next.pc;

        if (w == 0) {
            if (!fetchGate(pc, now))
                return;
            group_pc = pc;
            ++events_.icacheAccesses;
            MemLevel lvl = hier_.fetch(pc);
            if (lvl != MemLevel::L1) {
                // Pipelined L1 miss: charge L2 (back-end clocked at
                // the baseline rate) or full memory time.
                Tick stall = l2StallTicks_;
                if (lvl == MemLevel::Memory)
                    stall += memTicks_;
                fetchStallUntil_ = now + stall;
                ++stats_.icacheMissStalls;
                if (tracer_)
                    tracer_->span(obs::TraceCat::CacheMiss,
                                  lvl == MemLevel::Memory
                                      ? "icache_miss_mem"
                                      : "icache_miss_l2",
                                  now, stall, pc);
                return;
            }
        }

        InFlightInst ifi;
        ifi.arch = stream_.next();
        ifi.dispatchReady = now + static_cast<Tick>(feDepth_) * fe_period;

        bool end_group = false;
        bool stall_decode_redirect = false;
        if (ifi.arch.isBranch()) {
            ++events_.btbLookups;
            bool pred_taken;
            if (ifi.arch.isCondBranch) {
                ++events_.bpredLookups;
                ++stats_.condBranches;
                pred_taken = gshare_.predict(ifi.arch.pc);
                ifi.historyAtPredict = gshare_.history();
                gshare_.pushHistory(ifi.arch.taken);
                if (pred_taken != ifi.arch.taken) {
                    ifi.mispredicted = true;
                    ++stats_.mispredicts;
                }
            } else {
                pred_taken = true;
            }
            ifi.predictedTaken = pred_taken;

            if (ifi.mispredicted) {
                // Fetch stalls until the branch resolves in Execute.
                waitingOnMispredict_ = true;
                fetchStallUntil_ = kTickMax;
                end_group = true;
            } else if (ifi.arch.taken) {
                end_group = true;
                if (!btb_.lookup(ifi.arch.pc)) {
                    // Target produced at decode: two-cycle bubble.
                    ifi.btbMissBubble = true;
                    ++stats_.btbMissBubbles;
                    stall_decode_redirect = true;
                }
            }
        }

        feQueue_.push_back(ifi);
        ++fetched;

        if (stall_decode_redirect)
            fetchStallUntil_ = now + 3 * fe_period;
        if (end_group)
            break;
        // Fetch groups may not cross an aligned 16-byte block.
        if ((pc & 0xF) == 0xC)
            break;
    }
    if (tracer_ && fetched)
        tracer_->instant(obs::TraceCat::Fetch, "fetch", now, fetched,
                         group_pc);
}

void
CoreBase::stepDispatch(Tick now, Tick visible_delay)
{
    for (unsigned w = 0; w < params_.dispatchWidth; ++w) {
        if (feQueue_.empty())
            return;
        InFlightInst &head = feQueue_.front();
        if (head.dispatchReady > now)
            return;
        if (rob_.size() >= params_.robEntries) {
            ++stats_.robFullStalls;
            return;
        }
        if (iw_.full()) {
            ++stats_.iwFullStalls;
            return;
        }
        if (head.isMem() && lsq_.full()) {
            ++stats_.lsqFullStalls;
            return;
        }
        if (!canRenameDest(head)) {
            ++stats_.renameStalls;
            return;
        }

        renameSrcs(head);
        renameDest(head);

        ++events_.decodedOps;
        ++events_.renameOps;
        ++events_.dispatchOps;
        ++events_.robOps;
        events_.ratAccesses += head.arch.numSrcs();

        rob_.push_back(std::move(head));
        feQueue_.pop_front();
        InFlightInst *p = &rob_.back();
        p->iwVisible = now + visible_delay;
        iw_.insert(p);
        if (p->isMem()) {
            p->arch.isStore()
                ? lsq_.insert(p->arch.seq, true, p->arch.effAddr)
                : lsq_.insert(p->arch.seq, false, p->arch.effAddr);
            ++events_.lsqOps;
        }
    }
}

bool
CoreBase::operandsReady(const InFlightInst &inst, Tick now) const
{
    FW_LAYOUT_TOUCH(InFlightInst, src1Phys);
    if (inst.src1Phys != kNoPhysReg && regReady_[inst.src1Phys] > now)
        return false;
    FW_LAYOUT_TOUCH(InFlightInst, src2Phys);
    if (inst.src2Phys != kNoPhysReg && regReady_[inst.src2Phys] > now)
        return false;
    return true;
}

void
CoreBase::issueOne(InFlightInst *p, Tick now, Tick be_period)
{
    p->issued = true;
    p->issueTick = now;

    const unsigned rr = params_.regReadStages;
    unsigned exec_cycles = params_.execLatency(p->arch.op);
    Tick mem_extra = 0;

    if (p->isLoad()) {
        if (lsq_.loadForwards(p->arch.seq, p->arch.effAddr)) {
            exec_cycles += 1;  // LSQ forwarding
        } else {
            ++events_.dcacheAccesses;
            MemLevel lvl = hier_.data(p->arch.effAddr, false);
            exec_cycles += params_.mem.dcache.hitCycles;
            if (lvl != MemLevel::L1) {
                ++events_.l2Accesses;
                exec_cycles += params_.mem.l2Cycles;
                if (lvl == MemLevel::Memory) {
                    ++events_.memAccesses;
                    mem_extra = memTicks_;
                }
                if (tracer_)
                    tracer_->instant(obs::TraceCat::CacheMiss,
                                     lvl == MemLevel::Memory
                                         ? "dcache_miss_mem"
                                         : "dcache_miss_l2",
                                     now, p->arch.effAddr,
                                     p->arch.seq);
            }
        }
        ++events_.lsqOps;
    } else if (p->isStore()) {
        lsq_.storeIssued(p->arch.seq);
        ++events_.lsqOps;
    }

    p->completeTick = now +
        static_cast<Tick>(rr + exec_cycles) * be_period + mem_extra;
    issuedPending_.push_back(p);
    if (p->completeTick < minCompleteTick_)
        minCompleteTick_ = p->completeTick;

    if (p->arch.hasDest()) {
        // Bypass: dependents may issue exec_cycles (+ any extra
        // wake-up delay) after the producer's select.
        regReady_[p->destPhys] = now +
            static_cast<Tick>(exec_cycles + params_.wakeupExtraDelay) *
                be_period +
            mem_extra;
        ++events_.resultBusOps;
        ++events_.rfWrites;
        if (!p->fromEc)
            ++events_.iwBroadcasts;  // EC replay bypasses the CAM
    }

    events_.rfReads += p->arch.numSrcs();
    if (!p->fromEc)
        ++events_.iwIssues;

    switch (p->arch.op) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Nop:
        ++events_.aluOps;
        break;
      case OpClass::IntMul:
      case OpClass::IntDiv:
        ++events_.mulOps;
        break;
      case OpClass::FpAdd:
      case OpClass::FpMul:
      case OpClass::FpDiv:
        ++events_.fpOps;
        break;
      case OpClass::Load:
      case OpClass::Store:
        ++events_.aluOps;  // address generation
        break;
    }
}

void
CoreBase::stepIssue(Tick now, Tick be_period)
{
    fus_.beginCycle(now);
    iw_.visibleOldestFirst(now, eligible_);
    issuedGroup_.clear();

    for (InFlightInst *p : eligible_) {
        if (issuedGroup_.size() >= params_.issueWidth)
            break;
        if (!operandsReady(*p, now))
            continue;
        FW_LAYOUT_TOUCH(InFlightInst, arch.op);
        if (p->isLoad() && !lsq_.loadMayIssue(p->arch.seq))
            continue;
        if (!fus_.tryIssue(p->arch.op, now, double(be_period)))
            continue;
        iw_.remove(p);
        issueOne(p, now, be_period);
        issuedGroup_.push_back(p);
    }

    if (!issuedGroup_.empty()) {
        if (tracer_)
            tracer_->instant(obs::TraceCat::Issue, "issue", now,
                             issuedGroup_.size(),
                             issuedGroup_.front()->arch.seq);
        onIssueGroup(issuedGroup_, now);
    }
}

void
CoreBase::dropPendingCompletion(InFlightInst *inst)
{
    if (!inst->issued || inst->completed)
        return;
    for (std::size_t i = 0; i < issuedPending_.size(); ++i) {
        if (issuedPending_[i] == inst) {
            issuedPending_[i] = issuedPending_.back();
            issuedPending_.pop_back();
            return;
        }
    }
    FW_PANIC("issued instruction missing from the completion list");
}

void
CoreBase::stepComplete(Tick now, Tick)
{
    // The list holds only issued-but-incomplete instructions, and
    // minCompleteTick_ lets the common nothing-finishes cycle return
    // without touching it at all.
    if (now < minCompleteTick_)
        return;

    // Index-based on purpose: onMispredictResolved may squash the
    // wrong-path tail of the ROB (trace divergence).  The squash path
    // calls dropPendingCompletion for every popped entry, which
    // reorders this list arbitrarily — restart the pass after any
    // callback; completion marking is idempotent within the cycle.
    std::size_t i = 0;
    std::uint64_t completed_n = 0;
    while (i < issuedPending_.size()) {
        InFlightInst *p = issuedPending_[i];
        FW_LAYOUT_TOUCH(InFlightInst, completeTick);
        if (p->completeTick > now) {
            ++i;
            continue;
        }
        issuedPending_[i] = issuedPending_.back();
        issuedPending_.pop_back();
        p->completed = true;
        ++completed_n;
        FW_LAYOUT_TOUCH(InFlightInst, mispredicted);
        if (p->mispredicted && !p->squashed) {
            onMispredictResolved(*p, now);
            i = 0;
        }
    }
    if (tracer_ && completed_n)
        tracer_->instant(obs::TraceCat::Complete, "complete", now,
                         completed_n);

    minCompleteTick_ = kTickMax;
    for (const InFlightInst *p : issuedPending_) {
        FW_LAYOUT_TOUCH(InFlightInst, completeTick);
        if (p->completeTick < minCompleteTick_)
            minCompleteTick_ = p->completeTick;
    }
}

void
CoreBase::stepRetire(Tick now, Tick be_period)
{
    std::uint64_t retired_n = 0;
    std::uint64_t group_seq = 0;
    for (unsigned n = 0; n < params_.commitWidth && !rob_.empty(); ++n) {
        InFlightInst &h = rob_.front();
        FW_ASSERT(!h.squashed, "squashed instruction at ROB head");
        // WriteBack precedes Retire by one stage.
        if (!h.completed || h.completeTick + be_period > now)
            break;

        if (h.isStore()) {
            ++events_.dcacheAccesses;
            MemLevel lvl = hier_.data(h.arch.effAddr, true);
            if (lvl != MemLevel::L1) {
                ++events_.l2Accesses;
                if (lvl == MemLevel::Memory)
                    ++events_.memAccesses;
                if (tracer_)
                    tracer_->instant(obs::TraceCat::CacheMiss,
                                     lvl == MemLevel::Memory
                                         ? "store_miss_mem"
                                         : "store_miss_l2",
                                     now, h.arch.effAddr, h.arch.seq);
            }
        }
        // Branches replayed from the Execution Cache never consulted
        // the predictor (the front-end is shut down), so they do not
        // train it either.
        if (h.arch.isBranch() && !h.fromEc) {
            if (h.arch.isCondBranch)
                gshare_.update(h.arch.pc, h.historyAtPredict,
                               h.arch.taken);
            if (h.arch.taken)
                btb_.update(h.arch.pc, h.arch.target);
        }

        onRetire(h, now);
        if (retireHook_)
            retireHook_(h, now);

        if (h.isMem())
            lsq_.retire(h.arch.seq);
        ++events_.robOps;
        ++stats_.retired;
        if (h.fromEc)
            ++stats_.ecRetired;
        if (retired_n == 0)
            group_seq = h.arch.seq;
        ++retired_n;
        rob_.pop_front();
    }
    if (tracer_ && retired_n)
        tracer_->instant(obs::TraceCat::Retire, "retire", now,
                         retired_n, group_seq);
}

std::uint64_t
CoreBase::robIndexOf(const InFlightInst *inst) const
{
    if (inst == nullptr)
        return kNoRobIndex;
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        if (&rob_[i] == inst)
            return i;
    }
    FW_PANIC("snapshot save: tracked instruction not in the ROB");
}

InFlightInst *
CoreBase::robAt(std::uint64_t index)
{
    if (index == kNoRobIndex)
        return nullptr;
    FW_ASSERT(index < rob_.size(),
              "snapshot ROB index %llu out of range (%zu entries)",
              static_cast<unsigned long long>(index), rob_.size());
    return &rob_[index];
}

void
CoreBase::save(Snapshot &snap) const
{
    auto put = [&snap](const char *name, auto &&fill) {
        BinWriter w;
        fill(w);
        snap.addSection(name, w.take());
    };

    put("stream", [this](BinWriter &w) { stream_.save(w); });
    put("mem", [this](BinWriter &w) { hier_.save(w); });
    put("gshare", [this](BinWriter &w) { gshare_.save(w); });
    put("btb", [this](BinWriter &w) { btb_.save(w); });
    put("fus", [this](BinWriter &w) { fus_.save(w); });
    put("lsq", [this](BinWriter &w) { lsq_.save(w); });

    put("pipe", [this](BinWriter &w) {
        instRingToBin(w, rob_);
        instRingToBin(w, feQueue_);
        w.podArray(regReady_.data(), regReady_.size());
        iw_.save(w, [this](const InFlightInst *p) {
            return robIndexOf(p);
        });
        w.u64(issuedPending_.size());
        for (const InFlightInst *p : issuedPending_)
            w.u64(robIndexOf(p));
        w.u64(minCompleteTick_);
        static_assert(sizeof(EnergyEvents) % sizeof(std::uint64_t) == 0,
                      "EnergyEvents must stay an array of u64 fields");
        w.podArray(reinterpret_cast<const std::uint64_t *>(&events_),
                   sizeof(EnergyEvents) / sizeof(std::uint64_t));
        w.podArray(reinterpret_cast<const std::uint64_t *>(&stats_),
                   kCoreStatsFieldCount);
        w.u64(fetchStallUntil_);
        w.b(waitingOnMispredict_);
        w.u64(lastProgressRetired_);
        w.u64(lastProgressTick_);
    });
}

void
CoreBase::restore(const Snapshot &snap)
{
    {
        BinReader r = snap.section("stream");
        stream_.restore(r);
    }
    {
        BinReader r = snap.section("mem");
        hier_.restore(r);
    }
    {
        BinReader r = snap.section("gshare");
        gshare_.restore(r);
    }
    {
        BinReader r = snap.section("btb");
        btb_.restore(r);
    }
    {
        BinReader r = snap.section("fus");
        fus_.restore(r);
    }
    {
        BinReader r = snap.section("lsq");
        lsq_.restore(r);
    }

    BinReader r = snap.section("pipe");
    instRingFromBin(r, &rob_);
    instRingFromBin(r, &feQueue_);
    FW_ASSERT(rob_.size() <= params_.robEntries &&
                  feQueue_.size() <= feQueueCap_,
              "core snapshot exceeds configured structure sizes");
    r.podArray(regReady_.data(), regReady_.size());

    iw_.restore(r, [this](std::uint64_t idx) { return robAt(idx); });

    issuedPending_.clear();
    const std::uint64_t pending = r.u64();
    for (std::uint64_t i = 0; i < pending; ++i) {
        InFlightInst *p = robAt(r.u64());
        FW_ASSERT(p != nullptr && p->issued && !p->completed,
                  "issued-pending snapshot inconsistent with the ROB");
        issuedPending_.push_back(p);
    }
    minCompleteTick_ = r.u64();

    r.podArray(reinterpret_cast<std::uint64_t *>(&events_),
               sizeof(EnergyEvents) / sizeof(std::uint64_t));
    r.podArray(reinterpret_cast<std::uint64_t *>(&stats_),
               kCoreStatsFieldCount);
    fetchStallUntil_ = r.u64();
    waitingOnMispredict_ = r.b();
    lastProgressRetired_ = r.u64();
    lastProgressTick_ = r.u64();
}

void
CoreBase::checkProgress(Tick now)
{
    if (stats_.retired != lastProgressRetired_) {
        lastProgressRetired_ = stats_.retired;
        lastProgressTick_ = now;
        return;
    }
    if (now - lastProgressTick_ > progressHorizonTicks_) {
        FW_PANIC("pipeline wedged: no retirement since tick %llu "
                 "(now %llu, rob %zu, iw %u, feq %zu, stall %llu) %s",
                 static_cast<unsigned long long>(lastProgressTick_),
                 static_cast<unsigned long long>(now), rob_.size(),
                 iw_.occupancy(), feQueue_.size(),
                 static_cast<unsigned long long>(fetchStallUntil_),
                 progressDebug().c_str());
    }
}

} // namespace flywheel

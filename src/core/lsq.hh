/**
 * @file
 * Load/Store Queue (Table 2: 64 entries).  Memory disambiguation is
 * conservative, as in SimpleScalar-class models: a load may not issue
 * until every older store has computed its address; a load whose
 * address matches an older in-flight store forwards from the queue.
 * Stores write the data cache at retire.
 */

#ifndef FLYWHEEL_CORE_LSQ_HH
#define FLYWHEEL_CORE_LSQ_HH

#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"

namespace flywheel {

/** Load/store queue with conservative disambiguation. */
class Lsq
{
  public:
    explicit Lsq(unsigned entries) : capacity_(entries) {}

    bool full() const { return queue_.size() >= capacity_; }
    std::size_t size() const { return queue_.size(); }

    /** Allocate an entry at dispatch (program order). */
    void insert(InstSeqNum seq, bool is_store, Addr addr);

    /** True if no older store still has an unknown address. */
    bool loadMayIssue(InstSeqNum load_seq) const;

    /**
     * Variant for atomic issue-unit dispatch: stores listed in
     * @p co_issued are issuing in the same cycle (ahead of the load
     * in the unit) and count as having generated their addresses.
     */
    bool loadMayIssue(InstSeqNum load_seq,
                      const std::vector<InstSeqNum> &co_issued) const;

    /**
     * True if an older, already-issued store to the same 8-byte word
     * can forward its data to the load at @p load_seq.
     */
    bool loadForwards(InstSeqNum load_seq, Addr addr) const;

    /** Mark the store @p seq as having computed its address. */
    void storeIssued(InstSeqNum seq);

    /** Free the entry for @p seq at retire. */
    void retire(InstSeqNum seq);

    /** Drop all entries with sequence number >= @p seq (squash). */
    void squashFrom(InstSeqNum seq);

    /** Debug string: "seq:S/L:known ..." for every entry. */
    std::string debugDump() const;

  private:
    struct Entry
    {
        InstSeqNum seq;
        Addr word;       ///< address >> 3
        bool isStore;
        bool addrKnown;  ///< store has issued (address generated)
    };

    unsigned capacity_;
    std::deque<Entry> queue_;  ///< program order (front = oldest)
};

} // namespace flywheel

#endif // FLYWHEEL_CORE_LSQ_HH

/**
 * @file
 * Load/Store Queue (Table 2: 64 entries).  Memory disambiguation is
 * conservative, as in SimpleScalar-class models: a load may not issue
 * until every older store has computed its address; a load whose
 * address matches an older in-flight store forwards from the queue.
 * Stores write the data cache at retire.
 *
 * Storage is a fixed ring buffer (program order, no per-entry heap
 * traffic), and the common disambiguation query — "is any older
 * store's address still unknown?" — is answered from the tracked
 * sequence number of the oldest address-unknown store instead of a
 * queue walk.
 */

#ifndef FLYWHEEL_CORE_LSQ_HH
#define FLYWHEEL_CORE_LSQ_HH

#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/types.hh"

namespace flywheel {

namespace obs { class StatsGroup; }
class BinWriter;
class BinReader;

/** Load/store queue with conservative disambiguation. */
class Lsq
{
  public:
    explicit Lsq(Arena &arena, unsigned entries)
        : capacity_(entries), buf_(arena)
    {
        buf_.resize(entries);
    }

    bool full() const { return count_ >= capacity_; }
    std::size_t size() const { return count_; }

    /** Allocate an entry at dispatch (program order). */
    void insert(InstSeqNum seq, bool is_store, Addr addr);

    /** True if no older store still has an unknown address. */
    bool
    loadMayIssue(InstSeqNum load_seq) const
    {
        return unknownStores_ == 0 || load_seq <= minUnknownSeq_;
    }

    /**
     * Variant for atomic issue-unit dispatch: stores listed in
     * @p co_issued are issuing in the same cycle (ahead of the load
     * in the unit) and count as having generated their addresses.
     */
    bool loadMayIssue(InstSeqNum load_seq,
                      const std::vector<InstSeqNum> &co_issued) const;

    /**
     * True if an older, already-issued store to the same 8-byte word
     * can forward its data to the load at @p load_seq.
     */
    bool loadForwards(InstSeqNum load_seq, Addr addr) const;

    /** Mark the store @p seq as having computed its address. */
    void storeIssued(InstSeqNum seq);

    /** Free the entry for @p seq at retire. */
    void retire(InstSeqNum seq);

    /** Drop all entries with sequence number >= @p seq (squash). */
    void squashFrom(InstSeqNum seq);

    /** Debug string: "seq:S/L:known ..." for every entry. */
    std::string debugDump() const;

    /** Register occupancy/capacity gauges with the obs registry. */
    void registerStats(obs::StatsGroup &group) const;

    /** Serialize the queue contents and disambiguation counters. */
    void save(BinWriter &w) const;
    /** Restore state saved by save() (capacity must match). */
    void restore(BinReader &r);

  private:
    /**
     * Field order is profile-guided (flywheel.layout.v1): the
     * disambiguation walks read seq on every entry, isStore/addrKnown
     * on the survivors and word only on matching known stores.
     */
    struct Entry
    {
        InstSeqNum seq;
        bool isStore;
        bool addrKnown;  ///< store has issued (address generated)
        Addr word;       ///< address >> 3
    };

    /** Ring index of the i-th oldest entry. */
    std::size_t
    at(std::size_t i) const
    {
        std::size_t idx = head_ + i;
        if (idx >= capacity_)
            idx -= capacity_;
        return idx;
    }

    /** Entry lost an unknown address (issued / squashed / retired). */
    void noteUnknownGone(const Entry &e);
    /** Recompute minUnknownSeq_ with a queue walk. */
    void refreshMinUnknown();

    std::size_t capacity_;  // lint: nosnapshot(geometry checked by restore, not mutated)
    static_assert(std::is_trivially_copyable_v<Entry>,
                  "arena containers memcpy entries on snapshot save");
    ArenaVector<Entry> buf_;   ///< ring, program order from head_
    // lint: nosnapshot(save writes entries in order from head_; restore rebuilds at 0)
    std::size_t head_ = 0;
    std::size_t count_ = 0;

    unsigned unknownStores_ = 0;       ///< stores with addrKnown=false
    unsigned knownStores_ = 0;         ///< stores with addrKnown=true
    InstSeqNum minUnknownSeq_ = 0;     ///< oldest unknown store's seq
};

} // namespace flywheel

#endif // FLYWHEEL_CORE_LSQ_HH

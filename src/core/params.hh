/**
 * @file
 * Configuration of the simulated cores.  Defaults reproduce the
 * paper's Table 2 baseline; the Flywheel-specific fields configure
 * the mechanisms of Sections 3.2-3.5.
 */

#ifndef FLYWHEEL_CORE_PARAMS_HH
#define FLYWHEEL_CORE_PARAMS_HH

#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "mem/hierarchy.hh"

namespace flywheel {

/** Functional unit counts (Table 2). */
struct FuParams
{
    unsigned intAlu = 4;
    unsigned intMulDiv = 2;
    unsigned memPorts = 2;
    unsigned fpAdd = 2;
    unsigned fpMulDiv = 1;
};

/** Execution latencies in cycles (SimpleScalar-class defaults). */
struct FuLatencies
{
    unsigned intAlu = 1;
    unsigned intMul = 3;
    unsigned intDiv = 12;   ///< unpipelined
    unsigned fpAdd = 2;
    unsigned fpMul = 4;
    unsigned fpDiv = 12;    ///< unpipelined
    unsigned branch = 1;
    unsigned agen = 1;      ///< address generation for loads/stores
};

/** Everything needed to build a core. */
struct CoreParams
{
    // Pipeline widths (Table 2: 4-way front end, 6-wide issue).
    unsigned fetchWidth = 4;
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 6;
    unsigned commitWidth = 4;

    // Structure capacities.
    unsigned iwEntries = 128;
    unsigned robEntries = 160;  ///< in-flight bound (192-entry RF keeps
                                ///< at most ~128 renamed dests live)
    unsigned lsqEntries = 64;
    unsigned physRegs = 192;       ///< baseline R10000-style pool

    // Front-end depth: F1 F2 Decode Rename Dispatch = 5 stages; the
    // 9-stage pipeline adds Issue, RegRead, Execute, WriteBack/Retire.
    unsigned feStages = 5;
    unsigned extraFrontEndStages = 0;   ///< Fig 2's Fetch/Mispredict knob
    unsigned regReadStages = 1;

    /**
     * Extra cycles between a producer's select and the earliest
     * dependent select.  0 = single-cycle Wake-Up/Select (back-to-back
     * scheduling); 1 = pipelined Wake-Up/Select (Fig 2) or, in the
     * dual-clock window, the Delay-Network synchronizer alternative
     * of Section 3.2.
     */
    unsigned wakeupExtraDelay = 0;

    FuParams fus;
    FuLatencies lat;
    HierarchyParams mem;
    GshareParams bpred;
    BtbParams btb;

    // Clocking.  The baseline runs everything at basePeriodPs; the
    // Flywheel clocks the front-end at fePeriodPs and the back-end at
    // beFastPeriodPs while executing traces.  Main memory latency is
    // wall-clock: memBaselineCycles x basePeriodPs.
    double basePeriodPs = 1000.0;
    double fePeriodPs = 1000.0;
    double beFastPeriodPs = 1000.0;

    // --- Flywheel mechanisms (ignored by the baseline core) ---
    bool execCacheEnabled = true;
    bool srtEnabled = true;          ///< Speculative Remapping Table
    unsigned ecTotalBlocks = 2048;   ///< 128K / 64B blocks
    unsigned ecBlockSlots = 8;       ///< instruction slots per DA block
    unsigned ecTaEntries = 1024;
    unsigned ecReadCycles = 3;       ///< pipelined DA access
    unsigned maxTraceBlocks = 256;   ///< trace length cap
    unsigned minTraceUnits = 2;      ///< shortest trace worth storing
    /**
     * Minimum instructions before a trace may close on its own start
     * PC.  Small loops unroll inside one trace until this length is
     * reached, amortizing the per-trace-change checkpoint penalty
     * (the paper: "traces must be created as long as possible").
     */
    unsigned minTraceInstrs = 512;
    /**
     * Drop a trace after replaying it if it ended cleanly at less
     * than half minTraceInstrs or diverged in its first quarter, so
     * the next encounter rebuilds it under current (warmed-up)
     * branch behaviour.  Without this, short traces recorded during
     * predictor warm-up persist forever (they always hit and chain).
     */
    bool traceRebuildPolicy = true;
    unsigned poolPhysRegs = 512;     ///< Flywheel register file
    unsigned minPoolSize = 4;        ///< paper: most registers need <= 4
    std::uint64_t redistributionInterval = 500000;  ///< cycles
    unsigned redistributionCost = 100;              ///< stall cycles
    double redistributionStallFrac = 0.02; ///< trigger threshold

    /** Latency in cycles for @p op excluding memory access time. */
    unsigned
    execLatency(OpClass op) const
    {
        switch (op) {
          case OpClass::IntAlu: return lat.intAlu;
          case OpClass::IntMul: return lat.intMul;
          case OpClass::IntDiv: return lat.intDiv;
          case OpClass::FpAdd:  return lat.fpAdd;
          case OpClass::FpMul:  return lat.fpMul;
          case OpClass::FpDiv:  return lat.fpDiv;
          case OpClass::Branch: return lat.branch;
          case OpClass::Load:
          case OpClass::Store:  return lat.agen;
          case OpClass::Nop:    return 1;
        }
        return 1;
    }
};

} // namespace flywheel

#endif // FLYWHEEL_CORE_PARAMS_HH

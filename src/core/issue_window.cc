#include "core/issue_window.hh"

#include <algorithm>

#include "common/log.hh"

namespace flywheel {

IssueWindow::IssueWindow(unsigned entries)
    : slots_(entries, nullptr)
{}

void
IssueWindow::insert(InFlightInst *inst)
{
    FW_ASSERT(used_ < slots_.size(), "issue window overflow");
    for (auto &slot : slots_) {
        if (slot == nullptr) {
            slot = inst;
            inst->inIw = true;
            ++used_;
            return;
        }
    }
    FW_PANIC("no free slot despite used_ < capacity");
}

void
IssueWindow::remove(InFlightInst *inst)
{
    for (auto &slot : slots_) {
        if (slot == inst) {
            slot = nullptr;
            inst->inIw = false;
            --used_;
            return;
        }
    }
    FW_PANIC("removing instruction not in the window");
}

void
IssueWindow::dropSquashed()
{
    for (auto &slot : slots_) {
        if (slot != nullptr && slot->squashed) {
            slot->inIw = false;
            slot = nullptr;
            --used_;
        }
    }
}

void
IssueWindow::visibleOldestFirst(Tick now,
                                std::vector<InFlightInst *> &out) const
{
    out.clear();
    for (auto *slot : slots_) {
        if (slot != nullptr && !slot->issued && slot->iwVisible <= now)
            out.push_back(slot);
    }
    std::sort(out.begin(), out.end(),
              [](const InFlightInst *a, const InFlightInst *b) {
                  return a->arch.seq < b->arch.seq;
              });
}

} // namespace flywheel

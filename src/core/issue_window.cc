#include "core/issue_window.hh"

#include "common/log.hh"

namespace flywheel {

IssueWindow::IssueWindow(unsigned entries)
    : capacity_(entries)
{
    order_.reserve(static_cast<std::size_t>(entries) * 2);
}

void
IssueWindow::insert(InFlightInst *inst)
{
    FW_ASSERT(used_ < capacity_, "issue window overflow");
    FW_ASSERT(inst->arch.seq > lastSeq_,
              "issue window inserts must be age-ordered");
    lastSeq_ = inst->arch.seq;
    if (order_.size() == order_.capacity())
        compact();
    inst->iwPos = static_cast<std::uint32_t>(order_.size());
    order_.push_back(inst);
    inst->inIw = true;
    ++used_;
}

void
IssueWindow::remove(InFlightInst *inst)
{
    FW_ASSERT(inst->inIw && inst->iwPos < order_.size() &&
                  order_[inst->iwPos] == inst,
              "removing instruction not in the window");
    order_[inst->iwPos] = nullptr;
    inst->inIw = false;
    --used_;
    if (used_ == 0)
        order_.clear();
}

void
IssueWindow::dropSquashed()
{
    for (auto &slot : order_) {
        if (slot != nullptr && slot->squashed) {
            slot->inIw = false;
            slot = nullptr;
            --used_;
        }
    }
    if (used_ == 0)
        order_.clear();
}

void
IssueWindow::compact()
{
    std::size_t live = 0;
    for (std::size_t i = 0; i < order_.size(); ++i) {
        if (order_[i] == nullptr)
            continue;
        order_[i]->iwPos = static_cast<std::uint32_t>(live);
        order_[live++] = order_[i];
    }
    order_.resize(live);
}

void
IssueWindow::visibleOldestFirst(Tick now,
                                std::vector<InFlightInst *> &out) const
{
    // order_ is age-ordered by construction, so this is already the
    // oldest-first enumeration — no per-cycle sort.
    out.clear();
    for (auto *slot : order_) {
        if (slot != nullptr && !slot->issued && slot->iwVisible <= now)
            out.push_back(slot);
    }
}

} // namespace flywheel

#include "core/issue_window.hh"

#include "common/log.hh"
#include "obs/layout_profile.hh"
#include "obs/stats_registry.hh"
#include "snapshot/bincodec.hh"

namespace flywheel {

IssueWindow::IssueWindow(Arena &arena, unsigned entries)
    : order_(arena), visible_(arena), capacity_(entries)
{
    order_.reserve(static_cast<std::size_t>(entries) * 2);
    visible_.reserve(static_cast<std::size_t>(entries) * 2);
}

void
IssueWindow::insert(InFlightInst *inst)
{
    FW_ASSERT(used_ < capacity_, "issue window overflow");
    FW_ASSERT(inst->arch.seq > lastSeq_,
              "issue window inserts must be age-ordered");
    lastSeq_ = inst->arch.seq;
    if (order_.size() == order_.capacity())
        compact();
    inst->iwPos = static_cast<std::uint32_t>(order_.size());
    order_.push_back(inst);
    visible_.push_back(inst->iwVisible);
    inst->inIw = true;
    ++used_;
}

void
IssueWindow::remove(InFlightInst *inst)
{
    FW_ASSERT(inst->inIw && inst->iwPos < order_.size() &&
                  order_[inst->iwPos] == inst,
              "removing instruction not in the window");
    order_[inst->iwPos] = nullptr;
    visible_[inst->iwPos] = kTickMax;
    inst->inIw = false;
    --used_;
    if (used_ == 0) {
        order_.clear();
        visible_.clear();
    }
}

void
IssueWindow::dropSquashed()
{
    for (std::size_t i = 0; i < order_.size(); ++i) {
        InFlightInst *slot = order_[i];
        if (slot != nullptr && slot->squashed) {
            FW_LAYOUT_TOUCH(InFlightInst, squashed);
            slot->inIw = false;
            order_[i] = nullptr;
            visible_[i] = kTickMax;
            --used_;
        }
    }
    if (used_ == 0) {
        order_.clear();
        visible_.clear();
    }
}

void
IssueWindow::compact()
{
    std::size_t live = 0;
    for (std::size_t i = 0; i < order_.size(); ++i) {
        if (order_[i] == nullptr)
            continue;
        order_[i]->iwPos = static_cast<std::uint32_t>(live);
        order_[live] = order_[i];
        visible_[live] = visible_[i];
        ++live;
    }
    order_.resize(live);
    visible_.resize(live);
}

void
IssueWindow::save(BinWriter &w,
                  const std::function<std::uint64_t(const InFlightInst *)>
                      &index_of) const
{
    // Tombstones are kept (as all-ones sentinels) so the restored
    // array matches slot for slot: every entry's recorded iwPos
    // remains valid without re-deriving anything.  The visibility
    // mirror is derived state and is not serialized.
    constexpr std::uint64_t kNone = ~std::uint64_t(0);
    w.u64(order_.size());
    for (const InFlightInst *p : order_)
        w.u64(p == nullptr ? kNone : index_of(p));
    w.u64(lastSeq_);
}

void
IssueWindow::restore(BinReader &r,
                     const std::function<InFlightInst *(std::uint64_t)>
                         &at)
{
    constexpr std::uint64_t kNone = ~std::uint64_t(0);
    order_.clear();
    order_.reserve(static_cast<std::size_t>(capacity_) * 2);
    visible_.clear();
    visible_.reserve(static_cast<std::size_t>(capacity_) * 2);
    used_ = 0;
    const std::uint64_t slots = r.u64();
    for (std::uint64_t i = 0; i < slots; ++i) {
        const std::uint64_t idx = r.u64();
        if (idx == kNone) {
            order_.push_back(nullptr);
            visible_.push_back(kTickMax);
            continue;
        }
        InFlightInst *p = at(idx);
        FW_ASSERT(p != nullptr && p->inIw &&
                      p->iwPos == order_.size(),
                  "issue-window snapshot inconsistent with the ROB");
        order_.push_back(p);
        visible_.push_back(p->iwVisible);
        ++used_;
    }
    FW_ASSERT(used_ <= capacity_, "issue-window snapshot overflows");
    lastSeq_ = r.u64();
}

void
IssueWindow::visibleOldestFirst(Tick now,
                                std::vector<InFlightInst *> &out) const
{
    // order_ is age-ordered by construction, so this is already the
    // oldest-first enumeration — no per-cycle sort.  The scan runs
    // over the dense visibility ticks (tombstones read as kTickMax);
    // the ROB entry itself is only touched once its tick has passed.
    out.clear();
    for (std::size_t i = 0; i < visible_.size(); ++i) {
        FW_LAYOUT_TOUCH(IssueWindow, visibleTick);
        if (visible_[i] > now)
            continue;
        InFlightInst *slot = order_[i];
        FW_LAYOUT_TOUCH(InFlightInst, issued);
        if (!slot->issued)
            out.push_back(slot);
    }
}

void
IssueWindow::registerStats(obs::StatsGroup &group) const
{
    group.formula("occupancy", [this] { return double(used_); });
    group.formula("capacity", [this] { return double(capacity_); });
}

} // namespace flywheel

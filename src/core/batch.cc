#include "core/batch.hh"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/json.hh"
#include "snapshot/checkpointer.hh"
#include "workload/generator.hh"

namespace flywheel {

namespace {

/** Lane phase machine, mirroring runSim's warmup/measure structure. */
enum class LanePhase : std::uint8_t
{
    Warmup,      ///< pre-measurement warmup (quantum-split or atomic)
    Rewarm,      ///< detailed re-warm after a sampling fast-forward
    WindowBody,  ///< measured detailed window
    Done,        ///< RunResult produced
};

/**
 * Structural profile equality: lanes whose profiles match share one
 * immutable StaticProgram (construction is deterministic in the
 * profile, so sharing is observationally identical to rebuilding).
 */
bool
sameProfile(const BenchProfile &a, const BenchProfile &b)
{
    return std::strcmp(a.name, b.name) == 0 && a.seed == b.seed &&
           a.staticBlocks == b.staticBlocks &&
           a.avgBlockSize == b.avgBlockSize && a.regions == b.regions &&
           a.loadFrac == b.loadFrac && a.storeFrac == b.storeFrac &&
           a.fpFrac == b.fpFrac && a.mulFrac == b.mulFrac &&
           a.divFrac == b.divFrac && a.avgDepDist == b.avgDepDist &&
           a.diamondFrac == b.diamondFrac &&
           a.branchBias == b.branchBias &&
           a.loopTripMean == b.loopTripMean && a.callProb == b.callProb &&
           a.regWorkingSet == b.regWorkingSet &&
           a.dataFootprintKB == b.dataFootprintKB &&
           a.memRandomFrac == b.memRandomFrac;
}

// lint: wallclock(telemetry only; simulated results never read it)
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Run @p core until @p remaining more instructions retire or @p budget
 * is exhausted, whichever is first, and charge the ACTUAL retired
 * count (a cycle retires up to the commit width, so run() overshoots
 * its goal) against both counters.  Tracking the real delta keeps the
 * phase's cumulative goal equal to the scalar driver's single
 * run(remaining) call: the final chunk targets
 * phase_start + remaining_original exactly, and since run() stops at
 * cycle boundaries with no side effects, the core passes through the
 * same cycle states either way — byte identity follows.
 */
void
runCharged(CoreBase &core, std::uint64_t *remaining,
           std::uint64_t *budget)
{
    const std::uint64_t n = std::min(*budget, *remaining);
    if (n == 0)
        return;
    const std::uint64_t before = core.stats().retired;
    core.run(n);
    const std::uint64_t delta = core.stats().retired - before;
    *remaining -= std::min(delta, *remaining);
    *budget -= std::min(delta, *budget);
}

} // namespace

/** Cold per-lane state: everything not scanned every round. */
struct BatchedCore::LaneBox
{
    RunConfig config;
    std::shared_ptr<const StaticProgram> program;
    std::unique_ptr<WorkloadStream> stream;
    std::unique_ptr<CoreBase> core;
    std::unique_ptr<obs::Tracer> tracer;
    /** Transient store for a lane with a snapshot dir but no shared
     *  Checkpointer — the scalar runSim behaviour, per lane. */
    std::unique_ptr<Checkpointer> localStore;
    /** Warmup goes through Checkpointer::acquire in one shot. */
    bool atomicWarmup = false;
    SampleSchedule sched;
    EnergyEvents events{}, beforeEvents{};
    CoreStats stats{}, beforeStats{};
    RunTelemetry telemetry;
    RunResult result;
};

BatchedCore::BatchedCore(const std::vector<RunConfig> &configs,
                         Checkpointer *checkpoints, BatchOptions options)
    : checkpoints_(checkpoints), options_(options)
{
    hot_.reset(configs.size());
    cold_.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        auto box = std::make_unique<LaneBox>();
        box->config = configs[i];
        const SnapshotPolicy &policy = box->config.snapshot;
        if (checkpoints_ == nullptr &&
            policy.mode != SnapshotPolicy::Mode::Off &&
            !policy.dir.empty()) {
            box->localStore = std::make_unique<Checkpointer>(policy.dir);
        }
        for (std::size_t j = 0; j < i; ++j) {
            if (sameProfile(cold_[j]->config.profile,
                            box->config.profile)) {
                box->program = cold_[j]->program;
                break;
            }
        }
        if (!box->program) {
            box->program = std::make_shared<const StaticProgram>(
                box->config.profile);
        }
        box->stream = std::make_unique<WorkloadStream>(*box->program);
        box->core = makeCore(box->config, *box->stream);
        if (box->config.obs.traceSink != nullptr) {
            box->tracer = std::make_unique<obs::Tracer>(
                box->config.obs.traceMask, box->config.obs.traceCapacity);
        }
        box->sched = deriveSampleSchedule(policy,
                                          box->config.measureInstrs);
        const Checkpointer *store =
            box->localStore ? box->localStore.get() : checkpoints_;
        box->atomicWarmup = store != nullptr &&
                            policy.mode != SnapshotPolicy::Mode::Off &&
                            box->config.warmupInstrs > 0;

        BatchLaneState &hs = hot_[i];
        hs.active = true;
        hs.phase = static_cast<std::uint8_t>(LanePhase::Warmup);
        hs.remaining = box->atomicWarmup ? 0 : box->config.warmupInstrs;
        cold_.push_back(std::move(box));
        ++activeLanes_;
    }
}

BatchedCore::~BatchedCore() = default;

void
BatchedCore::beginWindow(std::size_t lane)
{
    BatchLaneState &hs = hot_[lane];
    LaneBox &box = *cold_[lane];
    if (hs.window > 0) {
        // Sampling gap: fast-forward the stream and re-warm a fresh
        // core, exactly as forEachMeasureWindow does between windows.
        box.stream->skip(box.sched.gap);
        box.core = makeCore(box.config, *box.stream);
        hs.phase = static_cast<std::uint8_t>(LanePhase::Rewarm);
        hs.remaining = box.sched.rewarm;
        return;
    }
    // First window: the warm core measures directly.
    box.core->setTracer(box.tracer.get());
    box.beforeEvents = box.core->events();
    box.beforeStats = box.core->stats();
    hs.phase = static_cast<std::uint8_t>(LanePhase::WindowBody);
    hs.remaining = hs.window + 1 == box.sched.windows
                       ? box.sched.lastWindow
                       : box.sched.window;
}

void
BatchedCore::finishWindow(std::size_t lane)
{
    BatchLaneState &hs = hot_[lane];
    LaneBox &box = *cold_[lane];
    box.events += box.core->events() - box.beforeEvents;
    box.stats += box.core->stats() - box.beforeStats;
    ++hs.window;
    if (hs.window >= box.sched.windows) {
        finishLane(lane);
        return;
    }
    beginWindow(lane);
}

void
BatchedCore::finishLane(std::size_t lane)
{
    BatchLaneState &hs = hot_[lane];
    LaneBox &box = *cold_[lane];
    const auto t0 = Clock::now();
    box.result = reduceToResult(box.config, box.events, box.stats);
    if (box.config.obs.collectStats) {
        box.result.statsDoc = std::make_shared<const Json>(
            box.core->statsRegistry().dump());
    }
    if (box.tracer) {
        box.config.obs.traceSink->add(
            box.config.obs.traceLabel.empty()
                ? box.config.profile.name
                : box.config.obs.traceLabel,
            *box.tracer);
    }
    box.telemetry.reduceSeconds = secondsSince(t0);
    box.result.telemetry = box.telemetry;
    hs.phase = static_cast<std::uint8_t>(LanePhase::Done);
    hs.active = false;
    --activeLanes_;
}

void
BatchedCore::runWarmupSlice(std::size_t lane, std::uint64_t *budget)
{
    BatchLaneState &hs = hot_[lane];
    LaneBox &box = *cold_[lane];
    const auto t0 = Clock::now();
    if (box.atomicWarmup) {
        // The checkpoint store's acquire is all-or-nothing: restore
        // is instant, and the creating lane pays the full warmup once
        // (then shares it with every lane whose checkpoint key
        // matches).
        box.telemetry.warmupRestored = runSimWarmup(
            box.config, *box.core,
            box.localStore ? box.localStore.get() : checkpoints_);
        *budget = 0;
    } else {
        runCharged(*box.core, &hs.remaining, budget);
    }
    box.telemetry.warmupSeconds += secondsSince(t0);
    if (hs.remaining == 0)
        beginWindow(lane);
}

void
BatchedCore::advance(std::size_t lane)
{
    BatchLaneState &hs = hot_[lane];
    LaneBox &box = *cold_[lane];
    std::uint64_t budget =
        options_.quantumInstrs > 0 ? options_.quantumInstrs : 1;

    // Phase transitions consume no budget but advance monotonically
    // (warmup -> windows -> done), so the loop always terminates.
    while (hs.active && budget > 0) {
        const auto t0 = Clock::now();
        switch (static_cast<LanePhase>(hs.phase)) {
          case LanePhase::Warmup:
            runWarmupSlice(lane, &budget);
            break;
          case LanePhase::Rewarm: {
            runCharged(*box.core, &hs.remaining, &budget);
            box.telemetry.measureSeconds += secondsSince(t0);
            if (hs.remaining == 0) {
                box.core->setTracer(box.tracer.get());
                box.beforeEvents = box.core->events();
                box.beforeStats = box.core->stats();
                hs.phase =
                    static_cast<std::uint8_t>(LanePhase::WindowBody);
                hs.remaining = hs.window + 1 == box.sched.windows
                                   ? box.sched.lastWindow
                                   : box.sched.window;
            }
            break;
          }
          case LanePhase::WindowBody: {
            runCharged(*box.core, &hs.remaining, &budget);
            box.telemetry.measureSeconds += secondsSince(t0);
            if (hs.remaining == 0)
                finishWindow(lane);
            break;
          }
          case LanePhase::Done:
            return;
        }
    }
}

void
BatchedCore::step()
{
    for (std::size_t i = 0; i < hot_.size(); ++i) {
        if (hot_[i].active)
            advance(i);
    }
}

void
BatchedCore::runAll()
{
    while (!done())
        step();
}

void
BatchedCore::finishWarmups()
{
    for (std::size_t i = 0; i < hot_.size(); ++i) {
        while (hot_[i].active &&
               static_cast<LanePhase>(hot_[i].phase) ==
                   LanePhase::Warmup) {
            // Unmetered slice: one pass either restores the checkpoint
            // or simulates the whole remaining warmup, then crosses
            // into the first window without touching it.
            std::uint64_t budget = ~std::uint64_t(0);
            runWarmupSlice(i, &budget);
        }
    }
}

std::uint64_t
BatchedCore::retiredInWindows() const
{
    std::uint64_t retired = 0;
    for (const auto &box : cold_)
        retired += box->stats.retired;
    return retired;
}

std::vector<RunResult>
BatchedCore::takeResults()
{
    std::vector<RunResult> results;
    results.reserve(cold_.size());
    for (auto &box : cold_)
        results.push_back(std::move(box->result));
    return results;
}

std::vector<RunResult>
runSimBatch(const std::vector<RunConfig> &configs,
            Checkpointer *checkpoints, const BatchOptions &options)
{
    BatchedCore batch(configs, checkpoints, options);
    batch.runAll();
    return batch.takeResults();
}

bool
parseBatchWidth(const char *text, unsigned *out)
{
    if (!text || !*text)
        return false;
    if (!std::isdigit(static_cast<unsigned char>(text[0])))
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno == ERANGE || *end != '\0')
        return false;
    if (v < 1 || v > 256)
        return false;
    *out = static_cast<unsigned>(v);
    return true;
}

} // namespace flywheel

#include "core/rename_map.hh"

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace flywheel {

RenameMap::RenameMap(unsigned phys_regs)
{
    FW_ASSERT(phys_regs > kNumArchRegs,
              "need more physical than architected registers");
    map_.resize(kNumArchRegs);
    for (unsigned i = 0; i < kNumArchRegs; ++i)
        map_[i] = static_cast<PhysReg>(i);
    for (unsigned i = kNumArchRegs; i < phys_regs; ++i)
        freeList_.push_back(static_cast<PhysReg>(i));
}

std::pair<PhysReg, PhysReg>
RenameMap::allocate(ArchReg arch_reg)
{
    FW_ASSERT(!freeList_.empty(), "allocate() without hasFree() check");
    PhysReg fresh = freeList_.back();
    freeList_.pop_back();
    PhysReg old = map_[arch_reg];
    map_[arch_reg] = fresh;
    return {fresh, old};
}

void
RenameMap::release(PhysReg phys_reg)
{
    freeList_.push_back(phys_reg);
}

void
RenameMap::save(Json &out) const
{
    out = Json::object();
    // The free list is a LIFO stack: its exact order decides which
    // physical register the next allocation hands out, so it is
    // preserved element for element.
    out.add("map", numArrayJson(map_));
    out.add("freeList", numArrayJson(freeList_));
}

void
RenameMap::restore(const Json &in)
{
    FW_ASSERT(in["map"].size() == map_.size(),
              "rename-map snapshot geometry mismatch");
    numArrayFrom(in["map"], &map_);
    numArrayFrom(in["freeList"], &freeList_);
}

} // namespace flywheel

#include "core/rename_map.hh"

#include "common/log.hh"

namespace flywheel {

RenameMap::RenameMap(unsigned phys_regs)
{
    FW_ASSERT(phys_regs > kNumArchRegs,
              "need more physical than architected registers");
    map_.resize(kNumArchRegs);
    for (unsigned i = 0; i < kNumArchRegs; ++i)
        map_[i] = static_cast<PhysReg>(i);
    for (unsigned i = kNumArchRegs; i < phys_regs; ++i)
        freeList_.push_back(static_cast<PhysReg>(i));
}

std::pair<PhysReg, PhysReg>
RenameMap::allocate(ArchReg arch_reg)
{
    FW_ASSERT(!freeList_.empty(), "allocate() without hasFree() check");
    PhysReg fresh = freeList_.back();
    freeList_.pop_back();
    PhysReg old = map_[arch_reg];
    map_[arch_reg] = fresh;
    return {fresh, old};
}

void
RenameMap::release(PhysReg phys_reg)
{
    freeList_.push_back(phys_reg);
}

} // namespace flywheel

#include "core/rename_map.hh"

#include "common/log.hh"
#include "snapshot/bincodec.hh"

namespace flywheel {

RenameMap::RenameMap(Arena &arena, unsigned phys_regs)
    : map_(arena), freeList_(arena)
{
    FW_ASSERT(phys_regs > kNumArchRegs,
              "need more physical than architected registers");
    map_.resize(kNumArchRegs);
    freeList_.reserve(phys_regs - kNumArchRegs);
    for (unsigned i = 0; i < kNumArchRegs; ++i)
        map_[i] = static_cast<PhysReg>(i);
    for (unsigned i = kNumArchRegs; i < phys_regs; ++i)
        freeList_.push_back(static_cast<PhysReg>(i));
}

std::pair<PhysReg, PhysReg>
RenameMap::allocate(ArchReg arch_reg)
{
    FW_ASSERT(!freeList_.empty(), "allocate() without hasFree() check");
    PhysReg fresh = freeList_.back();
    freeList_.pop_back();
    PhysReg old = map_[arch_reg];
    map_[arch_reg] = fresh;
    return {fresh, old};
}

void
RenameMap::release(PhysReg phys_reg)
{
    freeList_.push_back(phys_reg);
}

void
RenameMap::save(BinWriter &w) const
{
    // The free list is a LIFO stack: its exact order decides which
    // physical register the next allocation hands out, so it is
    // preserved element for element.
    w.podArray(map_.data(), map_.size());
    w.podArray(freeList_.data(), freeList_.size());
}

void
RenameMap::restore(BinReader &r)
{
    r.podArray(map_.data(), map_.size());
    freeList_.resize(static_cast<std::size_t>(r.peekCount()));
    r.podArray(freeList_.data(), freeList_.size());
}

} // namespace flywheel

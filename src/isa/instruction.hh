/**
 * @file
 * Instruction model for the simulated RISC-like ISA.  This plays the
 * role SimpleScalar's PISA plays in the paper's infrastructure: a
 * fixed-width load/store ISA with 32 integer and 32 floating point
 * architected registers and at most two sources / one destination per
 * instruction.
 */

#ifndef FLYWHEEL_ISA_INSTRUCTION_HH
#define FLYWHEEL_ISA_INSTRUCTION_HH

#include <string>

#include "common/types.hh"

namespace flywheel {

/**
 * Functional classes of instructions; each maps onto one functional
 * unit kind and an execution latency (see core/functional_units.hh).
 */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< single-cycle integer op (also branch condition eval)
    IntMul,   ///< pipelined integer multiply
    IntDiv,   ///< unpipelined integer divide
    FpAdd,    ///< floating point add/sub/cmp
    FpMul,    ///< floating point multiply
    FpDiv,    ///< unpipelined floating point divide / sqrt
    Load,     ///< memory read through a memory port
    Store,    ///< memory write through a memory port
    Branch,   ///< control transfer (conditional or unconditional)
    Nop,      ///< no-op (fills alignment holes)
};

/** Human-readable mnemonic for an OpClass. */
const char *opClassName(OpClass op);

/** True for Load/Store classes. */
inline bool
isMemOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

/** True for the floating point classes. */
inline bool
isFpOp(OpClass op)
{
    return op == OpClass::FpAdd || op == OpClass::FpMul ||
           op == OpClass::FpDiv;
}

/**
 * One dynamic instruction as produced by the workload generator.
 * This is the *architectural* record: program counter, operation,
 * register names, resolved branch behaviour and effective address.
 * Microarchitectural state (renamed registers, timestamps, ROB/IW
 * slots) lives in the cores' in-flight records, not here.
 */
struct DynInst
{
    InstSeqNum seq = 0;       ///< dynamic sequence number (1-based)
    Addr pc = 0;              ///< address of this instruction
    OpClass op = OpClass::Nop;

    ArchReg dest = kNoArchReg; ///< destination register or kNoArchReg
    ArchReg src1 = kNoArchReg; ///< first source or kNoArchReg
    ArchReg src2 = kNoArchReg; ///< second source or kNoArchReg

    bool isCondBranch = false; ///< conditional control transfer
    bool taken = false;        ///< actual outcome (branches only)
    Addr target = 0;           ///< actual next PC for taken branches

    Addr effAddr = 0;          ///< effective address (mem ops only)

    /** Architecturally correct next program counter. */
    Addr
    nextPc() const
    {
        if (op == OpClass::Branch && taken)
            return target;
        return pc + kInstBytes;
    }

    bool isBranch() const { return op == OpClass::Branch; }
    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool hasDest() const { return dest != kNoArchReg; }

    /** Number of register sources actually used. */
    unsigned
    numSrcs() const
    {
        return (src1 != kNoArchReg ? 1u : 0u) +
               (src2 != kNoArchReg ? 1u : 0u);
    }

    /** Debug string: "pc=0x.. op=LD r3 <- r1, r2". */
    std::string toString() const;
};

class BinWriter;
class BinReader;

/**
 * Snapshot serialization of one DynInst: fixed-width fields in
 * declaration order (field-by-field, never a raw struct memcpy —
 * DynInst has padding bytes, and snapshot payloads must be a pure
 * function of simulator state).  The pair below must stay in
 * lock-step; the snapshot format version gates layout changes.
 */
void dynInstToBin(BinWriter &w, const DynInst &d);
DynInst dynInstFromBin(BinReader &r);

} // namespace flywheel

#endif // FLYWHEEL_ISA_INSTRUCTION_HH

#include "isa/instruction.hh"

#include <sstream>

#include "common/json.hh"
#include "common/log.hh"

namespace flywheel {

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "IALU";
      case OpClass::IntMul: return "IMUL";
      case OpClass::IntDiv: return "IDIV";
      case OpClass::FpAdd:  return "FADD";
      case OpClass::FpMul:  return "FMUL";
      case OpClass::FpDiv:  return "FDIV";
      case OpClass::Load:   return "LD";
      case OpClass::Store:  return "ST";
      case OpClass::Branch: return "BR";
      case OpClass::Nop:    return "NOP";
    }
    return "???";
}

std::string
DynInst::toString() const
{
    std::ostringstream os;
    os << "[" << seq << "] pc=0x" << std::hex << pc << std::dec << " "
       << opClassName(op);
    if (dest != kNoArchReg)
        os << " r" << dest << " <-";
    if (src1 != kNoArchReg)
        os << " r" << src1;
    if (src2 != kNoArchReg)
        os << ", r" << src2;
    if (isBranch())
        os << (taken ? " taken->0x" : " nt->0x") << std::hex << nextPc()
           << std::dec;
    if (op == OpClass::Load || op == OpClass::Store)
        os << " @0x" << std::hex << effAddr << std::dec;
    return os.str();
}

Json
dynInstToJson(const DynInst &d)
{
    Json arr = Json::array();
    arr.push(d.seq);
    arr.push(d.pc);
    arr.push(std::uint64_t(d.op));
    arr.push(std::uint64_t(d.dest));
    arr.push(std::uint64_t(d.src1));
    arr.push(std::uint64_t(d.src2));
    arr.push(std::uint64_t(d.isCondBranch ? 1 : 0));
    arr.push(std::uint64_t(d.taken ? 1 : 0));
    arr.push(d.target);
    arr.push(d.effAddr);
    return arr;
}

DynInst
dynInstFromJson(const Json &j)
{
    FW_ASSERT(j.isArray() && j.size() == 10,
              "malformed DynInst snapshot record");
    DynInst d;
    d.seq = j.at(0).asU64();
    d.pc = j.at(1).asU64();
    d.op = static_cast<OpClass>(j.at(2).asU64());
    d.dest = static_cast<ArchReg>(j.at(3).asU64());
    d.src1 = static_cast<ArchReg>(j.at(4).asU64());
    d.src2 = static_cast<ArchReg>(j.at(5).asU64());
    d.isCondBranch = j.at(6).asU64() != 0;
    d.taken = j.at(7).asU64() != 0;
    d.target = j.at(8).asU64();
    d.effAddr = j.at(9).asU64();
    return d;
}

} // namespace flywheel

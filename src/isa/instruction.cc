#include "isa/instruction.hh"

#include <sstream>

#include "common/log.hh"
#include "snapshot/bincodec.hh"

namespace flywheel {

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "IALU";
      case OpClass::IntMul: return "IMUL";
      case OpClass::IntDiv: return "IDIV";
      case OpClass::FpAdd:  return "FADD";
      case OpClass::FpMul:  return "FMUL";
      case OpClass::FpDiv:  return "FDIV";
      case OpClass::Load:   return "LD";
      case OpClass::Store:  return "ST";
      case OpClass::Branch: return "BR";
      case OpClass::Nop:    return "NOP";
    }
    return "???";
}

std::string
DynInst::toString() const
{
    std::ostringstream os;
    os << "[" << seq << "] pc=0x" << std::hex << pc << std::dec << " "
       << opClassName(op);
    if (dest != kNoArchReg)
        os << " r" << dest << " <-";
    if (src1 != kNoArchReg)
        os << " r" << src1;
    if (src2 != kNoArchReg)
        os << ", r" << src2;
    if (isBranch())
        os << (taken ? " taken->0x" : " nt->0x") << std::hex << nextPc()
           << std::dec;
    if (op == OpClass::Load || op == OpClass::Store)
        os << " @0x" << std::hex << effAddr << std::dec;
    return os.str();
}

void
dynInstToBin(BinWriter &w, const DynInst &d)
{
    w.u64(d.seq);
    w.u64(d.pc);
    w.u8(static_cast<std::uint8_t>(d.op));
    w.u16(d.dest);
    w.u16(d.src1);
    w.u16(d.src2);
    w.b(d.isCondBranch);
    w.b(d.taken);
    w.u64(d.target);
    w.u64(d.effAddr);
}

DynInst
dynInstFromBin(BinReader &r)
{
    DynInst d;
    d.seq = r.u64();
    d.pc = r.u64();
    d.op = static_cast<OpClass>(r.u8());
    d.dest = r.u16();
    d.src1 = r.u16();
    d.src2 = r.u16();
    d.isCondBranch = r.b();
    d.taken = r.b();
    d.target = r.u64();
    d.effAddr = r.u64();
    return d;
}

} // namespace flywheel

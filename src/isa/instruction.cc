#include "isa/instruction.hh"

#include <sstream>

namespace flywheel {

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "IALU";
      case OpClass::IntMul: return "IMUL";
      case OpClass::IntDiv: return "IDIV";
      case OpClass::FpAdd:  return "FADD";
      case OpClass::FpMul:  return "FMUL";
      case OpClass::FpDiv:  return "FDIV";
      case OpClass::Load:   return "LD";
      case OpClass::Store:  return "ST";
      case OpClass::Branch: return "BR";
      case OpClass::Nop:    return "NOP";
    }
    return "???";
}

std::string
DynInst::toString() const
{
    std::ostringstream os;
    os << "[" << seq << "] pc=0x" << std::hex << pc << std::dec << " "
       << opClassName(op);
    if (dest != kNoArchReg)
        os << " r" << dest << " <-";
    if (src1 != kNoArchReg)
        os << " r" << src1;
    if (src2 != kNoArchReg)
        os << ", r" << src2;
    if (isBranch())
        os << (taken ? " taken->0x" : " nt->0x") << std::hex << nextPc()
           << std::dec;
    if (op == OpClass::Load || op == OpClass::Store)
        os << " @0x" << std::hex << effAddr << std::dec;
    return os.str();
}

} // namespace flywheel

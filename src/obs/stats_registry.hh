/**
 * @file
 * Hierarchical statistics registry (gem5-style) — the simulator's one
 * structured-stats surface.  Components register named counters,
 * gauges, histograms and formulas with a StatsGroup at construction;
 * the registry holds only *references* into the owning component, so
 * registration costs nothing on the simulation hot path and a dump
 * always reads the live values.
 *
 * dump() serializes the whole tree as a schema'd JSON document
 * (`flywheel.stats.v1`), which the CLIs export via `--stats` and the
 * CI observability job validates with validate().
 *
 * Lifetime contract: a registered pointer must outlive every dump()
 * of its registry.  In practice the registry is a member of the
 * component tree's root (CoreBase owns one; sub-components register
 * members of the same object), so lifetimes coincide.
 */

#ifndef FLYWHEEL_OBS_STATS_REGISTRY_HH
#define FLYWHEEL_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"

namespace flywheel::obs {

/** Schema tag every stats document carries. */
inline constexpr const char *kStatsSchema = "flywheel.stats.v1";

/**
 * One named group of statistics (a node such as "core.icache").
 * Groups are created through StatsRegistry::group(); stat names must
 * be unique within their group — a duplicate registration is a
 * simulator bug and panics.
 */
class StatsGroup
{
  public:
    /** Monotonic event count, read from a live uint64. */
    void counter(const std::string &name, const std::uint64_t *v,
                 const std::string &desc = "");
    /** Counter-class helper for the common Counter wrapper. */
    void counter(const std::string &name, const Counter &c,
                 const std::string &desc = "");
    /** Instantaneous value, read from a live double. */
    void gauge(const std::string &name, const double *v,
               const std::string &desc = "");
    /** Bucketed distribution, read from a live Distribution. */
    void histogram(const std::string &name, const Distribution *d,
                   const std::string &desc = "");
    /** Derived value, computed at dump time. */
    void formula(const std::string &name, std::function<double()> fn,
                 const std::string &desc = "");

    const std::string &name() const { return name_; }
    std::size_t size() const { return stats_.size(); }

    /** Serialize this group's stats array (live values). */
    Json toJson() const;

  private:
    friend class StatsRegistry;
    explicit StatsGroup(std::string name) : name_(std::move(name)) {}

    struct Stat
    {
        enum class Kind { CounterU64, CounterWrapped, Gauge, Hist,
                          Formula };
        std::string name;
        std::string desc;
        Kind kind;
        const void *ptr = nullptr;
        std::function<double()> fn;
    };

    void addStat(Stat stat);

    std::string name_;
    std::vector<Stat> stats_;
};

/**
 * The registry: an ordered set of uniquely named groups.  group()
 * returns an existing group or creates it, so several components can
 * contribute to one hierarchy level; serialization order is first-
 * registration order, which is construction order — deterministic.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;

    // Groups hold back-references only; a moved registry would leave
    // callers' StatsGroup references dangling.
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** The group at dotted path @p name (created on first use). */
    StatsGroup &group(const std::string &name);

    const std::vector<std::unique_ptr<StatsGroup>> &groups() const
    {
        return groups_;
    }

    /**
     * Remove the group named @p name (and every StatsGroup reference
     * to it — callers must not keep one across a drop).  False when
     * no such group exists.  For dynamic group populations, e.g. the
     * serve daemon's per-worker shards.
     */
    bool dropGroup(const std::string &name);

    /**
     * Serialize every group as the groups array of a
     * flywheel.stats.v1 document: [{"name": .., "stats": [..]}, ..].
     */
    Json dumpGroups() const;

    /** Full schema'd document: {"schema": .., "groups": [..]}. */
    Json dump() const;

  private:
    std::vector<std::unique_ptr<StatsGroup>> groups_;
};

/**
 * Validate a flywheel.stats.v1 document (as produced by dump() or
 * assembled by the CLIs, which may add "session" and "points"
 * sections).  False (and @p error) on schema violations.
 */
bool validateStatsJson(const Json &doc, std::string *error = nullptr);

} // namespace flywheel::obs

#endif // FLYWHEEL_OBS_STATS_REGISTRY_HH

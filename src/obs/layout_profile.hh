/**
 * @file
 * Field-access layout profiler for the hot simulator structs.
 *
 * The per-cycle loops (issue-window wakeup scan, issued-pending
 * completion gate, LSQ disambiguation walk, Execution Cache replay)
 * spend their time chasing a handful of struct fields; which fields
 * are hot decides where they belong in the struct (first cache line)
 * and which belong in the cold tail.  FW_LAYOUT_TOUCH(Struct, field)
 * marks a field read/write at a hot site; with the default build it
 * compiles to nothing, and under -DFLYWHEEL_PROFILE_LAYOUT (CMake
 * option FLYWHEEL_PROFILE_LAYOUT) every site keeps a relaxed atomic
 * counter that layoutProfileReport() aggregates into a
 * "flywheel.layout.v1" JSON document:
 *
 *     cmake -B build-layout -S . -DFLYWHEEL_PROFILE_LAYOUT=ON
 *     build-layout/flywheel_perf --layout-report layout.json
 *
 * The checked-in field orders of InFlightInst, Lsq::Entry, TraceSlot
 * and the IssueWindow visibility SoA were chosen from this report
 * (hot fields first, cold stats/debug last); re-run it after adding
 * fields to a hot struct.
 */

#ifndef FLYWHEEL_OBS_LAYOUT_PROFILE_HH
#define FLYWHEEL_OBS_LAYOUT_PROFILE_HH

#include <atomic>
#include <cstdint>

#include "common/json.hh"

namespace flywheel::obs {

/**
 * One call site's access counter.  Sites self-register on first
 * execution (function-local static) into a global intrusive list, so
 * the report covers exactly the sites the profiled run reached.
 */
class LayoutCounter
{
  public:
    LayoutCounter(const char *strct, const char *field);

    void bump() { count_.fetch_add(1, std::memory_order_relaxed); }

    const char *structName() const { return struct_; }
    const char *fieldName() const { return field_; }

    std::uint64_t
    value() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    void reset() { count_.store(0, std::memory_order_relaxed); }

    LayoutCounter *next() const { return next_; }

  private:
    const char *struct_;
    const char *field_;
    std::atomic<std::uint64_t> count_{0};
    LayoutCounter *next_ = nullptr;
};

/** True when the build carries -DFLYWHEEL_PROFILE_LAYOUT. */
constexpr bool
layoutProfileEnabled()
{
#if defined(FLYWHEEL_PROFILE_LAYOUT)
    return true;
#else
    return false;
#endif
}

/**
 * Aggregate every registered counter into a "flywheel.layout.v1"
 * document: structs ordered by total touches (descending), each with
 * its fields ordered the same way.  In a non-profiling build the
 * document is well-formed with "enabled": false and no structs.
 */
Json layoutProfileReport();

/** Zero every registered counter (profiling several runs in-process). */
void layoutProfileReset();

} // namespace flywheel::obs

#if defined(FLYWHEEL_PROFILE_LAYOUT)
#define FW_LAYOUT_TOUCH(strct, field)                                   \
    do {                                                                \
        static ::flywheel::obs::LayoutCounter fw_layout_counter_(       \
            #strct, #field);                                            \
        fw_layout_counter_.bump();                                      \
    } while (0)
#else
#define FW_LAYOUT_TOUCH(strct, field)                                   \
    do {                                                                \
    } while (0)
#endif

#endif // FLYWHEEL_OBS_LAYOUT_PROFILE_HH

/**
 * @file
 * Stats registry implementation: registration bookkeeping and the
 * flywheel.stats.v1 serializer/validator.
 */

#include "obs/stats_registry.hh"

#include "common/log.hh"

namespace flywheel::obs {

// ---- StatsGroup ----------------------------------------------------

void
StatsGroup::addStat(Stat stat)
{
    if (stat.name.empty())
        FW_PANIC("stats group '%s': empty stat name", name_.c_str());
    for (const Stat &s : stats_)
        if (s.name == stat.name)
            FW_PANIC("stats group '%s': duplicate stat '%s'",
                     name_.c_str(), stat.name.c_str());
    stats_.push_back(std::move(stat));
}

void
StatsGroup::counter(const std::string &name, const std::uint64_t *v,
                    const std::string &desc)
{
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = Stat::Kind::CounterU64;
    s.ptr = v;
    addStat(std::move(s));
}

void
StatsGroup::counter(const std::string &name, const Counter &c,
                    const std::string &desc)
{
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = Stat::Kind::CounterWrapped;
    s.ptr = &c;
    addStat(std::move(s));
}

void
StatsGroup::gauge(const std::string &name, const double *v,
                  const std::string &desc)
{
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = Stat::Kind::Gauge;
    s.ptr = v;
    addStat(std::move(s));
}

void
StatsGroup::histogram(const std::string &name, const Distribution *d,
                      const std::string &desc)
{
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = Stat::Kind::Hist;
    s.ptr = d;
    addStat(std::move(s));
}

void
StatsGroup::formula(const std::string &name, std::function<double()> fn,
                    const std::string &desc)
{
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = Stat::Kind::Formula;
    s.fn = std::move(fn);
    addStat(std::move(s));
}

Json
StatsGroup::toJson() const
{
    Json arr = Json::array();
    for (const Stat &s : stats_) {
        Json entry = Json::object();
        entry.set("name", Json(s.name));
        switch (s.kind) {
          case Stat::Kind::CounterU64:
            entry.set("type", Json("counter"));
            entry.set("value",
                      Json(*static_cast<const std::uint64_t *>(s.ptr)));
            break;
          case Stat::Kind::CounterWrapped:
            entry.set("type", Json("counter"));
            entry.set("value",
                      Json(static_cast<const Counter *>(s.ptr)
                               ->value()));
            break;
          case Stat::Kind::Gauge:
            entry.set("type", Json("gauge"));
            entry.set("value",
                      Json(*static_cast<const double *>(s.ptr)));
            break;
          case Stat::Kind::Hist: {
            const auto *d = static_cast<const Distribution *>(s.ptr);
            entry.set("type", Json("histogram"));
            Json bins = Json::array();
            for (std::uint64_t b : d->bins())
                bins.push(Json(b));
            entry.set("bins", std::move(bins));
            entry.set("overflow", Json(d->overflow()));
            entry.set("mean", Json(d->mean()));
            entry.set("max", Json(d->max()));
            break;
          }
          case Stat::Kind::Formula:
            entry.set("type", Json("formula"));
            entry.set("value", Json(s.fn ? s.fn() : 0.0));
            break;
        }
        if (!s.desc.empty())
            entry.set("desc", Json(s.desc));
        arr.push(std::move(entry));
    }
    return arr;
}

// ---- StatsRegistry -------------------------------------------------

StatsGroup &
StatsRegistry::group(const std::string &name)
{
    if (name.empty())
        FW_PANIC("stats registry: empty group name");
    for (const auto &g : groups_)
        if (g->name() == name)
            return *g;
    groups_.emplace_back(
        std::unique_ptr<StatsGroup>(new StatsGroup(name)));
    return *groups_.back();
}

bool
StatsRegistry::dropGroup(const std::string &name)
{
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
        if ((*it)->name() == name) {
            groups_.erase(it);
            return true;
        }
    }
    return false;
}

Json
StatsRegistry::dumpGroups() const
{
    Json arr = Json::array();
    for (const auto &g : groups_) {
        Json entry = Json::object();
        entry.set("name", Json(g->name()));
        entry.set("stats", g->toJson());
        arr.push(std::move(entry));
    }
    return arr;
}

Json
StatsRegistry::dump() const
{
    Json doc = Json::object();
    doc.set("schema", Json(std::string(kStatsSchema)));
    doc.set("groups", dumpGroups());
    return doc;
}

// ---- validator -----------------------------------------------------

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

bool
validateStatEntry(const Json &stat, const std::string &where,
                  std::string *error)
{
    if (!stat.isObject())
        return fail(error, where + ": stat is not an object");
    if (!stat["name"].isString())
        return fail(error, where + ": stat missing string 'name'");
    if (!stat["type"].isString())
        return fail(error, where + ": stat missing string 'type'");
    const std::string type = stat["type"].asString();
    const std::string id = where + "." + stat["name"].asString();
    if (type == "counter" || type == "gauge" || type == "formula") {
        if (!stat["value"].isNumber())
            return fail(error, id + ": missing numeric 'value'");
        return true;
    }
    if (type == "histogram") {
        if (!stat["bins"].isArray())
            return fail(error, id + ": histogram missing 'bins'");
        for (const Json &b : stat["bins"].items())
            if (!b.isNumber())
                return fail(error, id + ": non-numeric histogram bin");
        if (!stat["overflow"].isNumber())
            return fail(error, id + ": histogram missing 'overflow'");
        if (!stat["mean"].isNumber())
            return fail(error, id + ": histogram missing 'mean'");
        return true;
    }
    return fail(error, id + ": unknown stat type '" + type + "'");
}

bool
validateGroupsArray(const Json &groups, const std::string &where,
                    std::string *error)
{
    if (!groups.isArray())
        return fail(error, where + ": 'groups' is not an array");
    for (const Json &g : groups.items()) {
        if (!g.isObject())
            return fail(error, where + ": group is not an object");
        if (!g["name"].isString())
            return fail(error,
                        where + ": group missing string 'name'");
        const std::string gname = g["name"].asString();
        if (!g["stats"].isArray())
            return fail(error, gname + ": missing 'stats' array");
        for (const Json &stat : g["stats"].items())
            if (!validateStatEntry(stat, gname, error))
                return false;
    }
    return true;
}

} // namespace

bool
validateStatsJson(const Json &doc, std::string *error)
{
    if (!doc.isObject())
        return fail(error, "stats document is not an object");
    if (!doc["schema"].isString() ||
        doc["schema"].asString() != kStatsSchema)
        return fail(error, std::string("missing/unknown schema (want ") +
                               kStatsSchema + ")");
    // A bare registry dump has "groups"; a CLI-assembled session
    // document has "points", each carrying its own groups.
    bool any = false;
    if (doc.has("groups")) {
        if (!validateGroupsArray(doc["groups"], "root", error))
            return false;
        any = true;
    }
    if (doc.has("points")) {
        if (!doc["points"].isArray())
            return fail(error, "'points' is not an array");
        for (const Json &p : doc["points"].items()) {
            if (!p.isObject() || !p["point"].isObject())
                return fail(error, "point entry missing 'point' object");
            if (!p.has("groups"))
                return fail(error, "point entry missing 'groups'");
            if (!validateGroupsArray(p["groups"], "point", error))
                return false;
        }
        any = true;
    }
    if (!any)
        return fail(error, "document has neither 'groups' nor 'points'");
    if (doc.has("session") && !doc["session"].isObject())
        return fail(error, "'session' is not an object");
    return true;
}

} // namespace flywheel::obs

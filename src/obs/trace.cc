/**
 * @file
 * Tracer / TraceSink implementation and the Chrome trace-event
 * exporter.  Export rules (see the Trace Event Format document):
 * "X" = complete (duration) event, "i" = instant event, "M" =
 * metadata; "ts"/"dur" are microseconds.  Simulated time is in
 * picoseconds, so ts_us = ticks / 1e6 — written as an exact double
 * division of an integer tick, which the deterministic Json writer
 * renders byte-stably on every platform.
 */

#include "obs/trace.hh"

#include <algorithm>

namespace flywheel::obs {

namespace {

struct CatName
{
    TraceCat cat;
    const char *name;
};

constexpr CatName kCatNames[] = {
    {TraceCat::Fetch, "fetch"},
    {TraceCat::Issue, "issue"},
    {TraceCat::Complete, "complete"},
    {TraceCat::Retire, "retire"},
    {TraceCat::EcMode, "ecmode"},
    {TraceCat::Replay, "replay"},
    {TraceCat::Squash, "squash"},
    {TraceCat::CacheMiss, "cachemiss"},
    {TraceCat::ClockPlan, "clockplan"},
};

constexpr double kTicksPerMicrosecond = 1e6; // ps -> us

} // namespace

const char *
traceCatName(TraceCat cat)
{
    for (const CatName &c : kCatNames)
        if (c.cat == cat)
            return c.name;
    return "unknown";
}

bool
parseTraceCats(const std::string &list, std::uint32_t *mask)
{
    std::vector<std::string> tokens;
    std::string::size_type start = 0;
    while (start <= list.size()) {
        std::string::size_type comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            tokens.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }

    std::uint32_t result = 0;
    for (const std::string &tok : tokens) {
        if (tok == "all") {
            result |= kTraceCatAll;
            continue;
        }
        bool found = false;
        for (const CatName &c : kCatNames) {
            if (tok == c.name) {
                result |= std::uint32_t(c.cat);
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    if (result == 0)
        return false;
    *mask = result;
    return true;
}

std::string
traceCatUsageList()
{
    std::string out;
    for (const CatName &c : kCatNames) {
        if (!out.empty())
            out += ",";
        out += c.name;
    }
    return out;
}

// ---- Tracer --------------------------------------------------------

Tracer::Tracer(std::uint32_t mask, std::size_t capacity)
    : mask_(mask), capacity_(capacity ? capacity : 1)
{
    ring_.reserve(capacity_);
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(size());
    if (wrapped_)
        out.insert(out.end(), ring_.begin() + std::ptrdiff_t(head_),
                   ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + std::ptrdiff_t(wrapped_ ? head_
                                                       : ring_.size()));
    return out;
}

// ---- TraceSink -----------------------------------------------------

void
TraceSink::add(const std::string &label, const Tracer &tracer)
{
    std::vector<TraceEvent> events = tracer.snapshot();
    std::lock_guard<std::mutex> lock(mutex_);
    for (Run &run : runs_) {
        if (run.label == label) {
            // Sampled runs merge several measurement windows under
            // one label; events from later windows have later ticks.
            run.events.insert(run.events.end(), events.begin(),
                              events.end());
            run.dropped += tracer.dropped();
            return;
        }
    }
    Run run;
    run.label = label;
    run.events = std::move(events);
    run.dropped = tracer.dropped();
    runs_.push_back(std::move(run));
}

std::size_t
TraceSink::runCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return runs_.size();
}

std::size_t
TraceSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const Run &run : runs_)
        n += run.events.size();
    return n;
}

std::uint64_t
TraceSink::droppedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const Run &run : runs_)
        n += run.dropped;
    return n;
}

Json
TraceSink::toChromeJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Deterministic output for any worker completion order: runs are
    // serialized sorted by label, tid = 1-based sorted position.
    std::vector<const Run *> ordered;
    ordered.reserve(runs_.size());
    for (const Run &run : runs_)
        ordered.push_back(&run);
    std::sort(ordered.begin(), ordered.end(),
              [](const Run *a, const Run *b) {
                  return a->label < b->label;
              });

    Json events = Json::array();
    int tid = 0;
    for (const Run *run : ordered) {
        ++tid;
        Json meta = Json::object();
        meta.add("name", Json("thread_name"));
        meta.add("ph", Json("M"));
        meta.add("pid", Json(1));
        meta.add("tid", Json(tid));
        Json margs = Json::object();
        margs.add("name", Json(run->label));
        meta.add("args", std::move(margs));
        events.push(std::move(meta));

        for (const TraceEvent &e : run->events) {
            Json ev = Json::object();
            ev.add("name", Json(e.name ? e.name : "event"));
            ev.add("cat", Json(traceCatName(e.cat)));
            ev.add("ph", Json(e.dur ? "X" : "i"));
            ev.add("ts", Json(double(e.ts) / kTicksPerMicrosecond));
            if (e.dur)
                ev.add("dur",
                       Json(double(e.dur) / kTicksPerMicrosecond));
            else
                ev.add("s", Json("t")); // instant scope: thread
            ev.add("pid", Json(1));
            ev.add("tid", Json(tid));
            Json args = Json::object();
            args.add("a0", Json(e.a0));
            args.add("a1", Json(e.a1));
            ev.add("args", std::move(args));
            events.push(std::move(ev));
        }
    }

    Json doc = Json::object();
    doc.add("schema", Json(std::string(kTraceSchema)));
    doc.add("displayTimeUnit", Json("ns"));
    doc.add("traceEvents", std::move(events));
    return doc;
}

void
TraceSink::writeChrome(std::ostream &os) const
{
    toChromeJson().write(os, 2);
    os << "\n";
}

// ---- validator -----------------------------------------------------

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

bool
validateTraceJson(const Json &doc, std::string *error)
{
    if (!doc.isObject())
        return fail(error, "trace document is not an object");
    if (!doc["schema"].isString() ||
        doc["schema"].asString() != kTraceSchema)
        return fail(error, std::string("missing/unknown schema (want ") +
                               kTraceSchema + ")");
    if (!doc["traceEvents"].isArray())
        return fail(error, "missing 'traceEvents' array");
    std::size_t index = 0;
    for (const Json &ev : doc["traceEvents"].items()) {
        const std::string where =
            "traceEvents[" + std::to_string(index++) + "]";
        if (!ev.isObject())
            return fail(error, where + ": not an object");
        if (!ev["name"].isString())
            return fail(error, where + ": missing string 'name'");
        if (!ev["ph"].isString())
            return fail(error, where + ": missing string 'ph'");
        const std::string ph = ev["ph"].asString();
        if (ph == "M")
            continue; // metadata carries no timestamp
        if (ph != "X" && ph != "i")
            return fail(error, where + ": unexpected phase '" + ph +
                                   "'");
        if (!ev["ts"].isNumber())
            return fail(error, where + ": missing numeric 'ts'");
        if (ph == "X" && !ev["dur"].isNumber())
            return fail(error, where + ": 'X' event missing 'dur'");
        if (!ev["pid"].isNumber() || !ev["tid"].isNumber())
            return fail(error, where + ": missing pid/tid");
        if (!ev["cat"].isString())
            return fail(error, where + ": missing string 'cat'");
    }
    return true;
}

} // namespace flywheel::obs

/**
 * @file
 * Pipeline event tracer: a per-run, category-masked, bounded
 * ring-buffer of simulation events, exported as Chrome trace-event
 * JSON (load the file in Perfetto or chrome://tracing).
 *
 * Hot-path contract: a core holds a plain `Tracer *` that is null
 * when tracing is off, so the disabled path is one pointer compare
 * per would-be event.  When enabled, emit() is a mask test plus a
 * ring-slot store — no allocation, no locking, no formatting.  Event
 * names must be string literals (the tracer stores the pointer).
 *
 * The ring is bounded (capacity fixed at construction); when full,
 * the oldest events are overwritten and `dropped()` counts how many
 * were lost, so a trace of a long run keeps its *tail* — usually the
 * region of interest — at a fixed memory cost.
 *
 * TraceSink collects the tracers of a multi-run session (one per
 * sweep cell) under a mutex and writes one merged Chrome JSON
 * document, one trace "thread" per run label.
 */

#ifndef FLYWHEEL_OBS_TRACE_HH
#define FLYWHEEL_OBS_TRACE_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace flywheel::obs {

/** Schema tag embedded in exported trace documents. */
inline constexpr const char *kTraceSchema = "flywheel.trace.v1";

/**
 * Event categories, one bit each, combined into an enable mask.
 * The names (traceCatName) are what `--trace-cats` parses and what
 * the Chrome export writes in the "cat" field.
 */
enum class TraceCat : std::uint32_t {
    Fetch     = 1u << 0,  ///< instruction fetch groups
    Issue     = 1u << 1,  ///< issue groups leaving the window
    Complete  = 1u << 2,  ///< completions writing back
    Retire    = 1u << 3,  ///< retire groups
    EcMode    = 1u << 4,  ///< Execution Cache mode entry/exit
    Replay    = 1u << 5,  ///< EC replay start/finish
    Squash    = 1u << 6,  ///< divergence squashes
    CacheMiss = 1u << 7,  ///< icache/dcache/l2 misses
    ClockPlan = 1u << 8,  ///< clock-plan / redistribution edges
};

inline constexpr std::uint32_t kTraceCatAll = (1u << 9) - 1;

/** Canonical lowercase name of one category bit. */
const char *traceCatName(TraceCat cat);

/**
 * Parse a comma-separated category list ("retire,ecmode" or "all")
 * into a mask.  Returns false on an unknown name (mask untouched).
 */
bool parseTraceCats(const std::string &list, std::uint32_t *mask);

/** Human-readable list of every category name, for usage text. */
std::string traceCatUsageList();

/**
 * One recorded event.  `name` must point at a string literal.  For
 * duration events `dur` is the span in ticks; `dur == 0` records an
 * instant.  a0/a1 are free-form numeric arguments (exported as
 * "args": their meaning is per-event, e.g. instruction count or
 * trace id).
 */
struct TraceEvent
{
    Tick ts = 0;
    Tick dur = 0;
    const char *name = nullptr;
    TraceCat cat = TraceCat::Fetch;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
};

/** Bounded single-run event recorder (not thread-safe by design). */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = std::size_t(1)
                                                    << 16;

    explicit Tracer(std::uint32_t mask = kTraceCatAll,
                    std::size_t capacity = kDefaultCapacity);

    bool wants(TraceCat cat) const
    {
        return (mask_ & std::uint32_t(cat)) != 0;
    }
    std::uint32_t mask() const { return mask_; }

    /** Record an instant event (if the category is enabled). */
    void
    instant(TraceCat cat, const char *name, Tick ts,
            std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        if (!wants(cat))
            return;
        record({ts, 0, name, cat, a0, a1});
    }

    /** Record a duration event spanning [ts, ts + dur). */
    void
    span(TraceCat cat, const char *name, Tick ts, Tick dur,
         std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        if (!wants(cat))
            return;
        record({ts, dur, name, cat, a0, a1});
    }

    /** Events currently held, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    std::size_t size() const
    {
        return wrapped_ ? capacity_ : ring_.size();
    }
    std::size_t capacity() const { return capacity_; }
    std::uint64_t recorded() const { return recorded_; }
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const
    {
        return recorded_ - std::uint64_t(size());
    }

  private:
    void
    record(TraceEvent e)
    {
        ++recorded_;
        if (ring_.size() < capacity_) {
            ring_.push_back(e);
            return;
        }
        ring_[head_] = e;
        head_ = (head_ + 1) % capacity_;
        wrapped_ = true;
    }

    std::uint32_t mask_;
    // capacity_ is the exact ring bound (vector::reserve may
    // over-allocate, and the kept-event window must be deterministic
    // for golden traces).
    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    bool wrapped_ = false;
    std::uint64_t recorded_ = 0;
};

/**
 * Thread-safe collector merging per-run tracers into one Chrome
 * trace document.  Sweep workers add() their finished tracer's
 * events under the run's label; writeChrome() assigns one tid per
 * label (sorted, so output is deterministic for any worker count)
 * and emits `{"schema": .., "traceEvents": [..]}`.
 */
class TraceSink
{
  public:
    TraceSink() = default;

    /** Merge @p tracer's current events under @p label. */
    void add(const std::string &label, const Tracer &tracer);

    /** Runs merged so far. */
    std::size_t runCount() const;
    /** Total events held across runs. */
    std::size_t eventCount() const;
    /** Total events lost to ring wrap across runs. */
    std::uint64_t droppedTotal() const;

    /** Serialize as a Chrome trace-event JSON document. */
    Json toChromeJson() const;
    void writeChrome(std::ostream &os) const;

  private:
    struct Run
    {
        std::string label;
        std::vector<TraceEvent> events;
        std::uint64_t dropped = 0;
    };

    mutable std::mutex mutex_;
    std::vector<Run> runs_;
};

/**
 * Validate a document produced by TraceSink::writeChrome (schema tag
 * plus Chrome trace-event structural rules on every event).
 */
bool validateTraceJson(const Json &doc, std::string *error = nullptr);

} // namespace flywheel::obs

#endif // FLYWHEEL_OBS_TRACE_HH

#include "obs/layout_profile.hh"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace flywheel::obs {

namespace {

/**
 * Registry head.  Function-local so a counter constructed during
 * static initialization of another translation unit still finds an
 * initialized head (no init-order dependence).
 */
std::atomic<LayoutCounter *> &
registryHead()
{
    static std::atomic<LayoutCounter *> head{nullptr};
    return head;
}

} // namespace

LayoutCounter::LayoutCounter(const char *strct, const char *field)
    : struct_(strct), field_(field)
{
    std::atomic<LayoutCounter *> &head = registryHead();
    LayoutCounter *old = head.load(std::memory_order_relaxed);
    do {
        next_ = old;
    } while (!head.compare_exchange_weak(old, this,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
}

Json
layoutProfileReport()
{
    // Several call sites may touch the same struct/field pair; fold
    // them before reporting.  std::map keys give a stable tie-break
    // under the by-count sort, so the report is deterministic for a
    // deterministic run.
    std::map<std::string, std::map<std::string, std::uint64_t>> by;
    for (LayoutCounter *c =
             registryHead().load(std::memory_order_acquire);
         c != nullptr; c = c->next()) {
        by[c->structName()][c->fieldName()] += c->value();
    }

    Json doc = Json::object();
    doc.add("schema", "flywheel.layout.v1");
    doc.add("enabled", layoutProfileEnabled());

    using FieldRow = std::pair<std::string, std::uint64_t>;
    using StructRow =
        std::pair<std::string, std::vector<FieldRow>>;
    std::vector<std::pair<std::uint64_t, StructRow>> rows;
    for (const auto &s : by) {
        std::uint64_t total = 0;
        std::vector<FieldRow> fields(s.second.begin(), s.second.end());
        for (const FieldRow &f : fields)
            total += f.second;
        std::stable_sort(fields.begin(), fields.end(),
                         [](const FieldRow &a, const FieldRow &b) {
                             return a.second > b.second;
                         });
        rows.emplace_back(total,
                          StructRow{s.first, std::move(fields)});
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });

    Json structs = Json::array();
    for (auto &row : rows) {
        Json s = Json::object();
        s.add("struct", row.second.first);
        s.add("touches", row.first);
        Json fields = Json::array();
        for (const FieldRow &f : row.second.second) {
            Json fj = Json::object();
            fj.add("field", f.first);
            fj.add("touches", f.second);
            fields.push(std::move(fj));
        }
        s.add("fields", std::move(fields));
        structs.push(std::move(s));
    }
    doc.add("structs", std::move(structs));
    return doc;
}

void
layoutProfileReset()
{
    for (LayoutCounter *c =
             registryHead().load(std::memory_order_acquire);
         c != nullptr; c = c->next()) {
        c->reset();
    }
}

} // namespace flywheel::obs

/**
 * @file
 * Two-phase, pool-based register renaming (paper Sections 3.4/3.5).
 *
 * Every architected register owns a private pool of physical entries
 * used as a circular buffer: a write always allocates the next entry
 * of its own pool, so false dependencies disappear without a global
 * free list — which is what allows trace replays from the Execution
 * Cache to regenerate physical register addresses without the
 * original program order (Register Rename assigns logical ids, the
 * Register Update stage remaps them through the Remapping Table).
 *
 * The timing-relevant behaviour modelled here:
 *  - a pool of size S admits at most S-1 in-flight writes to its
 *    architected register (one entry always holds the committed
 *    value); Rename/Update stalls otherwise;
 *  - dynamic pool redistribution [12]: stall/write counters are
 *    examined periodically and pool sizes are re-proportioned, which
 *    invalidates the Execution Cache and costs a fixed stall.
 *
 * Physical register indices returned by allocate() index the core's
 * readiness scoreboard, so wake-up and bypass work unchanged.
 */

#ifndef FLYWHEEL_FLYWHEEL_POOL_RENAME_HH
#define FLYWHEEL_FLYWHEEL_POOL_RENAME_HH

#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "common/types.hh"

namespace flywheel {

namespace obs { class StatsGroup; }
class BinWriter;
class BinReader;

/** Per-architected-register circular rename pools. */
class PoolRenameUnit
{
  public:
    /**
     * @param phys_regs total physical entries (paper: 512)
     * @param min_pool  smallest pool size after redistribution
     */
    PoolRenameUnit(Arena &arena, unsigned phys_regs, unsigned min_pool);

    /** True if a write to @p r can be renamed now. */
    bool canAllocate(ArchReg r) const;

    /**
     * Allocate the next pool entry of @p r.
     * @param prev_slot_out receives the rollback cursor.
     * @return physical index for the readiness scoreboard.
     */
    PhysReg allocate(ArchReg r, std::uint16_t &prev_slot_out);

    /** Retire the oldest in-flight write to @p r. */
    void release(ArchReg r);

    /** Undo the youngest allocation for @p r (trace squash). */
    void rollback(ArchReg r, std::uint16_t prev_slot);

    /** Physical entry holding the newest (possibly in-flight) value. */
    PhysReg current(ArchReg r) const;

    /** Record a Rename/Update stall caused by @p r's pool. */
    void noteStall(ArchReg r);

    /** In-flight writes to @p r. */
    unsigned inflight(ArchReg r) const { return pools_[r].inflight; }
    unsigned poolSize(ArchReg r) const { return pools_[r].size; }

    /** Total stalls recorded since the last redistribution. */
    std::uint64_t stallsSinceCheck() const { return stallsSinceCheck_; }

    /**
     * Re-proportion pool sizes from the write/stall counters
     * (requires an empty pipeline: no in-flight writes).
     * @return true if any pool size changed (EC must be invalidated).
     */
    bool redistribute();

    /** Number of architected registers whose pool exceeds @p n. */
    unsigned poolsLargerThan(unsigned n) const;

    /** Start a fresh observation window without redistributing. */
    void resetWindow();

    /** Register aggregate write/stall counts with the obs registry. */
    void registerStats(obs::StatsGroup &group) const;

    /** Serialize every pool's layout, cursors and counters. */
    void save(BinWriter &w) const;
    /** Restore state saved by save() (total size must match). */
    void restore(BinReader &r);

  private:
    struct Pool
    {
        std::uint32_t base = 0;
        std::uint32_t size = 0;
        std::uint16_t lastSlot = 0;   ///< newest allocation cursor
        std::uint32_t inflight = 0;   ///< unretired writes
        std::uint64_t writes = 0;
        std::uint64_t stalls = 0;
    };

    void layoutPools(const std::vector<std::uint32_t> &sizes);

    unsigned physRegs_;  // lint: nosnapshot(geometry checked by restore, not mutated)
    unsigned minPool_;   // lint: nosnapshot(construction-time config)
    static_assert(std::is_trivially_copyable_v<Pool>,
                  "arena containers memcpy entries on snapshot save");
    ArenaVector<Pool> pools_;
    std::uint64_t stallsSinceCheck_ = 0;
};

} // namespace flywheel

#endif // FLYWHEEL_FLYWHEEL_POOL_RENAME_HH

#include "flywheel/exec_cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace flywheel {

ExecCache::ExecCache(unsigned total_blocks, unsigned block_slots,
                     unsigned ta_entries)
    : totalBlocks_(total_blocks), blockSlots_(block_slots),
      taEntries_(ta_entries)
{
    FW_ASSERT(block_slots >= 1, "blocks must hold at least one slot");
    FW_ASSERT(total_blocks >= 2, "DA too small");
}

Trace *
ExecCache::lookup(Addr pc)
{
    auto it = traces_.find(pc);
    if (it == traces_.end())
        return nullptr;
    it->second.lastUse = ++useClock_;
    return it->second.trace.get();
}

bool
ExecCache::contains(Addr pc) const
{
    return traces_.count(pc) != 0;
}

bool
ExecCache::isPinned(Addr pc) const
{
    for (Addr p : pinned_) {
        if (p == pc)
            return true;
    }
    return false;
}

void
ExecCache::unpin(Addr pc)
{
    for (auto it = pinned_.begin(); it != pinned_.end(); ++it) {
        if (*it == pc) {
            pinned_.erase(it);
            return;
        }
    }
}

bool
ExecCache::evictLru()
{
    auto victim = traces_.end();
    for (auto it = traces_.begin(); it != traces_.end(); ++it) {
        if (isPinned(it->first))
            continue;
        if (victim == traces_.end() ||
            it->second.lastUse < victim->second.lastUse) {
            victim = it;
        }
    }
    if (victim == traces_.end())
        return false;
    usedBlocks_ -= victim->second.trace->numBlocks(blockSlots_);
    traces_.erase(victim);
    ++evictions_;
    return true;
}

bool
ExecCache::insert(std::unique_ptr<Trace> trace)
{
    const std::uint32_t blocks = trace->numBlocks(blockSlots_);
    if (blocks > totalBlocks_)
        return false;

    auto existing = traces_.find(trace->startPc);
    if (existing != traces_.end()) {
        if (isPinned(trace->startPc))
            return false;  // never replace a live trace mid-replay
        usedBlocks_ -= existing->second.trace->numBlocks(blockSlots_);
        traces_.erase(existing);
    }

    while (usedBlocks_ + blocks > totalBlocks_ ||
           traces_.size() >= taEntries_) {
        if (!evictLru())
            return false;  // everything resident is pinned
    }

    usedBlocks_ += blocks;
    Addr pc = trace->startPc;
    traces_[pc] = Entry{std::move(trace), ++useClock_};
    return true;
}

void
ExecCache::erase(Addr pc)
{
    FW_ASSERT(!isPinned(pc), "erasing a pinned trace");
    auto it = traces_.find(pc);
    if (it == traces_.end())
        return;
    usedBlocks_ -= it->second.trace->numBlocks(blockSlots_);
    traces_.erase(it);
}

void
ExecCache::invalidateAll()
{
    traces_.clear();
    usedBlocks_ = 0;
}

std::vector<Addr>
ExecCache::tracePcs() const
{
    std::vector<Addr> pcs;
    pcs.reserve(traces_.size());
    for (const auto &e : traces_)
        pcs.push_back(e.first);
    std::sort(pcs.begin(), pcs.end());
    return pcs;
}

} // namespace flywheel

#include "flywheel/exec_cache.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/stats_registry.hh"
#include "snapshot/bincodec.hh"

namespace flywheel {

ExecCache::ExecCache(unsigned total_blocks, unsigned block_slots,
                     unsigned ta_entries)
    : totalBlocks_(total_blocks), blockSlots_(block_slots),
      taEntries_(ta_entries)
{
    FW_ASSERT(block_slots >= 1, "blocks must hold at least one slot");
    FW_ASSERT(total_blocks >= 2, "DA too small");
}

Trace *
ExecCache::lookup(Addr pc)
{
    auto it = traces_.find(pc);
    if (it == traces_.end())
        return nullptr;
    it->second.lastUse = ++useClock_;
    return it->second.trace.get();
}

Trace *
ExecCache::find(Addr pc)
{
    auto it = traces_.find(pc);
    return it == traces_.end() ? nullptr : it->second.trace.get();
}

bool
ExecCache::contains(Addr pc) const
{
    return traces_.count(pc) != 0;
}

bool
ExecCache::isPinned(Addr pc) const
{
    for (Addr p : pinned_) {
        if (p == pc)
            return true;
    }
    return false;
}

void
ExecCache::unpin(Addr pc)
{
    for (auto it = pinned_.begin(); it != pinned_.end(); ++it) {
        if (*it == pc) {
            pinned_.erase(it);
            return;
        }
    }
}

bool
ExecCache::evictLru()
{
    auto victim = traces_.end();
    // lint: detorder(min over unique lastUse stamps; order-independent)
    for (auto it = traces_.begin(); it != traces_.end(); ++it) {
        if (isPinned(it->first))
            continue;
        if (victim == traces_.end() ||
            it->second.lastUse < victim->second.lastUse) {
            victim = it;
        }
    }
    if (victim == traces_.end())
        return false;
    usedBlocks_ -= victim->second.trace->numBlocks(blockSlots_);
    traces_.erase(victim);
    ++evictions_;
    return true;
}

bool
ExecCache::insert(std::unique_ptr<Trace> trace)
{
    const std::uint32_t blocks = trace->numBlocks(blockSlots_);
    if (blocks > totalBlocks_)
        return false;

    auto existing = traces_.find(trace->startPc);
    if (existing != traces_.end()) {
        if (isPinned(trace->startPc))
            return false;  // never replace a live trace mid-replay
        usedBlocks_ -= existing->second.trace->numBlocks(blockSlots_);
        traces_.erase(existing);
    }

    while (usedBlocks_ + blocks > totalBlocks_ ||
           traces_.size() >= taEntries_) {
        if (!evictLru())
            return false;  // everything resident is pinned
    }

    usedBlocks_ += blocks;
    Addr pc = trace->startPc;
    traces_[pc] = Entry{std::move(trace), ++useClock_};
    return true;
}

void
ExecCache::erase(Addr pc)
{
    FW_ASSERT(!isPinned(pc), "erasing a pinned trace");
    auto it = traces_.find(pc);
    if (it == traces_.end())
        return;
    usedBlocks_ -= it->second.trace->numBlocks(blockSlots_);
    traces_.erase(it);
}

void
ExecCache::invalidateAll()
{
    traces_.clear();
    usedBlocks_ = 0;
}

std::vector<Addr>
ExecCache::tracePcs() const
{
    std::vector<Addr> pcs;
    pcs.reserve(traces_.size());
    for (const auto &e : traces_)  // lint: detorder(sorted below)
        pcs.push_back(e.first);
    std::sort(pcs.begin(), pcs.end());
    return pcs;
}

void
traceSlotsToBin(BinWriter &w, const std::vector<TraceSlot> &slots)
{
    // Field-by-field: TraceSlot has padding after isCondBranch.
    w.u64(slots.size());
    for (const TraceSlot &s : slots) {
        w.u64(s.pc);
        w.u8(static_cast<std::uint8_t>(s.op));
        w.u16(s.dest);
        w.u16(s.src1);
        w.u16(s.src2);
        w.u64(s.recordedEffAddr);
        w.b(s.isCondBranch);
        w.u32(s.rank);
    }
}

void
traceSlotsFromBin(BinReader &r, std::vector<TraceSlot> *out)
{
    const std::uint64_t count = r.u64();
    out->clear();
    out->reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceSlot s;
        s.pc = r.u64();
        s.op = static_cast<OpClass>(r.u8());
        s.dest = static_cast<ArchReg>(r.u16());
        s.src1 = static_cast<ArchReg>(r.u16());
        s.src2 = static_cast<ArchReg>(r.u16());
        s.recordedEffAddr = r.u64();
        s.isCondBranch = r.b();
        s.rank = r.u32();
        out->push_back(s);
    }
}

void
issueUnitsToBin(BinWriter &w, const std::vector<IssueUnit> &units)
{
    // IssueUnit is two packed u32s: memcpy-able.
    w.podArray(units.data(), units.size());
}

void
issueUnitsFromBin(BinReader &r, std::vector<IssueUnit> *out)
{
    r.podVec(*out);
}

void
traceToBin(BinWriter &w, const Trace &t)
{
    w.u64(t.startPc);
    traceSlotsToBin(w, t.slots);
    issueUnitsToBin(w, t.units);
}

std::unique_ptr<Trace>
traceFromBin(BinReader &r)
{
    auto t = std::make_unique<Trace>();
    t->startPc = r.u64();
    traceSlotsFromBin(r, &t->slots);
    issueUnitsFromBin(r, &t->units);
    t->rankToSlot.assign(t->slots.size(), 0);
    for (std::uint32_t i = 0; i < t->slots.size(); ++i) {
        FW_ASSERT(t->slots[i].rank < t->rankToSlot.size(),
                  "trace snapshot rank out of range");
        t->rankToSlot[t->slots[i].rank] = i;
    }
    return t;
}

void
ExecCache::save(BinWriter &w) const
{
    // Traces in ascending start-PC order so serialization is
    // deterministic regardless of hash-map iteration order.
    w.u64(traces_.size());
    for (Addr pc : tracePcs()) {
        const Entry &e = traces_.at(pc);
        traceToBin(w, *e.trace);
        w.u64(e.lastUse);
    }
    w.podArray(pinned_.data(), pinned_.size());
    w.u32(usedBlocks_);
    w.u64(useClock_);
    w.u64(evictions_.value());
}

void
ExecCache::restore(BinReader &r)
{
    traces_.clear();
    usedBlocks_ = 0;
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        std::unique_ptr<Trace> t = traceFromBin(r);
        const std::uint64_t last_use = r.u64();
        usedBlocks_ += t->numBlocks(blockSlots_);
        const Addr pc = t->startPc;
        FW_ASSERT(traces_.count(pc) == 0,
                  "duplicate trace in Execution Cache snapshot");
        traces_[pc] = Entry{std::move(t), last_use};
    }
    r.podVec(pinned_);
    const std::uint32_t stored_used = r.u32();
    FW_ASSERT(usedBlocks_ == stored_used &&
                  usedBlocks_ <= totalBlocks_ &&
                  traces_.size() <= taEntries_,
              "Execution Cache snapshot exceeds configured capacity");
    useClock_ = r.u64();
    evictions_.set(r.u64());
}

void
ExecCache::registerStats(obs::StatsGroup &group) const
{
    group.counter("evictions", evictions_);
    group.formula("usedBlocks", [this] { return double(usedBlocks_); });
    group.formula("totalBlocks",
                  [this] { return double(totalBlocks_); });
    group.formula("traceCount",
                  [this] { return double(traces_.size()); });
}

} // namespace flywheel

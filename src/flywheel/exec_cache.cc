#include "flywheel/exec_cache.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/stats_registry.hh"
#include "snapshot/snapshot.hh"

namespace flywheel {

ExecCache::ExecCache(unsigned total_blocks, unsigned block_slots,
                     unsigned ta_entries)
    : totalBlocks_(total_blocks), blockSlots_(block_slots),
      taEntries_(ta_entries)
{
    FW_ASSERT(block_slots >= 1, "blocks must hold at least one slot");
    FW_ASSERT(total_blocks >= 2, "DA too small");
}

Trace *
ExecCache::lookup(Addr pc)
{
    auto it = traces_.find(pc);
    if (it == traces_.end())
        return nullptr;
    it->second.lastUse = ++useClock_;
    return it->second.trace.get();
}

Trace *
ExecCache::find(Addr pc)
{
    auto it = traces_.find(pc);
    return it == traces_.end() ? nullptr : it->second.trace.get();
}

bool
ExecCache::contains(Addr pc) const
{
    return traces_.count(pc) != 0;
}

bool
ExecCache::isPinned(Addr pc) const
{
    for (Addr p : pinned_) {
        if (p == pc)
            return true;
    }
    return false;
}

void
ExecCache::unpin(Addr pc)
{
    for (auto it = pinned_.begin(); it != pinned_.end(); ++it) {
        if (*it == pc) {
            pinned_.erase(it);
            return;
        }
    }
}

bool
ExecCache::evictLru()
{
    auto victim = traces_.end();
    for (auto it = traces_.begin(); it != traces_.end(); ++it) {
        if (isPinned(it->first))
            continue;
        if (victim == traces_.end() ||
            it->second.lastUse < victim->second.lastUse) {
            victim = it;
        }
    }
    if (victim == traces_.end())
        return false;
    usedBlocks_ -= victim->second.trace->numBlocks(blockSlots_);
    traces_.erase(victim);
    ++evictions_;
    return true;
}

bool
ExecCache::insert(std::unique_ptr<Trace> trace)
{
    const std::uint32_t blocks = trace->numBlocks(blockSlots_);
    if (blocks > totalBlocks_)
        return false;

    auto existing = traces_.find(trace->startPc);
    if (existing != traces_.end()) {
        if (isPinned(trace->startPc))
            return false;  // never replace a live trace mid-replay
        usedBlocks_ -= existing->second.trace->numBlocks(blockSlots_);
        traces_.erase(existing);
    }

    while (usedBlocks_ + blocks > totalBlocks_ ||
           traces_.size() >= taEntries_) {
        if (!evictLru())
            return false;  // everything resident is pinned
    }

    usedBlocks_ += blocks;
    Addr pc = trace->startPc;
    traces_[pc] = Entry{std::move(trace), ++useClock_};
    return true;
}

void
ExecCache::erase(Addr pc)
{
    FW_ASSERT(!isPinned(pc), "erasing a pinned trace");
    auto it = traces_.find(pc);
    if (it == traces_.end())
        return;
    usedBlocks_ -= it->second.trace->numBlocks(blockSlots_);
    traces_.erase(it);
}

void
ExecCache::invalidateAll()
{
    traces_.clear();
    usedBlocks_ = 0;
}

std::vector<Addr>
ExecCache::tracePcs() const
{
    std::vector<Addr> pcs;
    pcs.reserve(traces_.size());
    for (const auto &e : traces_)
        pcs.push_back(e.first);
    std::sort(pcs.begin(), pcs.end());
    return pcs;
}

Json
traceSlotsToJson(const std::vector<TraceSlot> &slots)
{
    // Packed 8-tuples: a warm Execution Cache holds up to the full
    // DA block budget of slots, the bulkiest Flywheel component.
    std::vector<std::uint64_t> flat;
    flat.reserve(slots.size() * 8);
    for (const TraceSlot &s : slots) {
        flat.push_back(s.pc);
        flat.push_back(std::uint64_t(s.op));
        flat.push_back(s.dest);
        flat.push_back(s.src1);
        flat.push_back(s.src2);
        flat.push_back(s.recordedEffAddr);
        flat.push_back(s.isCondBranch ? 1 : 0);
        flat.push_back(s.rank);
    }
    return packedU64Json(flat);
}

void
traceSlotsFromJson(const Json &j, std::vector<TraceSlot> *out)
{
    std::vector<std::uint64_t> flat;
    packedU64From(j, &flat);
    FW_ASSERT(flat.size() % 8 == 0,
              "malformed trace-slot snapshot array");
    out->clear();
    out->reserve(flat.size() / 8);
    for (std::size_t i = 0; i < flat.size(); i += 8) {
        TraceSlot s;
        s.pc = flat[i];
        s.op = static_cast<OpClass>(flat[i + 1]);
        s.dest = static_cast<ArchReg>(flat[i + 2]);
        s.src1 = static_cast<ArchReg>(flat[i + 3]);
        s.src2 = static_cast<ArchReg>(flat[i + 4]);
        s.recordedEffAddr = flat[i + 5];
        s.isCondBranch = flat[i + 6] != 0;
        s.rank = static_cast<std::uint32_t>(flat[i + 7]);
        out->push_back(s);
    }
}

Json
issueUnitsToJson(const std::vector<IssueUnit> &units)
{
    std::vector<std::uint64_t> flat;
    flat.reserve(units.size() * 2);
    for (const IssueUnit &u : units) {
        flat.push_back(u.firstSlot);
        flat.push_back(u.count);
    }
    return packedU64Json(flat);
}

void
issueUnitsFromJson(const Json &j, std::vector<IssueUnit> *out)
{
    std::vector<std::uint64_t> flat;
    packedU64From(j, &flat);
    FW_ASSERT(flat.size() % 2 == 0,
              "malformed issue-unit snapshot array");
    out->clear();
    out->reserve(flat.size() / 2);
    for (std::size_t i = 0; i < flat.size(); i += 2) {
        IssueUnit u;
        u.firstSlot = static_cast<std::uint32_t>(flat[i]);
        u.count = static_cast<std::uint32_t>(flat[i + 1]);
        out->push_back(u);
    }
}

Json
traceToJson(const Trace &t)
{
    Json j = Json::object();
    j.add("startPc", t.startPc);
    j.add("slots", traceSlotsToJson(t.slots));
    j.add("units", issueUnitsToJson(t.units));
    return j;
}

std::unique_ptr<Trace>
traceFromJson(const Json &j)
{
    auto t = std::make_unique<Trace>();
    t->startPc = j["startPc"].asU64();
    traceSlotsFromJson(j["slots"], &t->slots);
    issueUnitsFromJson(j["units"], &t->units);
    t->rankToSlot.assign(t->slots.size(), 0);
    for (std::uint32_t i = 0; i < t->slots.size(); ++i) {
        FW_ASSERT(t->slots[i].rank < t->rankToSlot.size(),
                  "trace snapshot rank out of range");
        t->rankToSlot[t->slots[i].rank] = i;
    }
    return t;
}

void
ExecCache::save(Json &out) const
{
    out = Json::object();
    // Traces in ascending start-PC order so serialization is
    // deterministic regardless of hash-map iteration order.
    Json entries = Json::array();
    for (Addr pc : tracePcs()) {
        const Entry &e = traces_.at(pc);
        Json ej = traceToJson(*e.trace);
        ej.add("lastUse", e.lastUse);
        entries.push(std::move(ej));
    }
    out.add("traces", std::move(entries));
    out.add("pinned", numArrayJson(pinned_));
    out.add("usedBlocks", std::uint64_t(usedBlocks_));
    out.add("useClock", useClock_);
    out.add("evictions", evictions_.value());
}

void
ExecCache::restore(const Json &in)
{
    traces_.clear();
    usedBlocks_ = 0;
    for (const Json &ej : in["traces"].items()) {
        std::unique_ptr<Trace> t = traceFromJson(ej);
        usedBlocks_ += t->numBlocks(blockSlots_);
        const Addr pc = t->startPc;
        FW_ASSERT(traces_.count(pc) == 0,
                  "duplicate trace in Execution Cache snapshot");
        traces_[pc] = Entry{std::move(t), ej["lastUse"].asU64()};
    }
    FW_ASSERT(usedBlocks_ == in["usedBlocks"].asU64() &&
                  usedBlocks_ <= totalBlocks_ &&
                  traces_.size() <= taEntries_,
              "Execution Cache snapshot exceeds configured capacity");
    numArrayFrom(in["pinned"], &pinned_);
    useClock_ = in["useClock"].asU64();
    evictions_.set(in["evictions"].asU64());
}

void
ExecCache::registerStats(obs::StatsGroup &group) const
{
    group.counter("evictions", evictions_);
    group.formula("usedBlocks", [this] { return double(usedBlocks_); });
    group.formula("totalBlocks",
                  [this] { return double(totalBlocks_); });
    group.formula("traceCount",
                  [this] { return double(traces_.size()); });
}

} // namespace flywheel

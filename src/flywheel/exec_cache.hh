/**
 * @file
 * The Execution Cache (paper Section 3.3): a trace store placed
 * *after* the Issue stage that records instructions in issue order,
 * grouped into Issue Units (instructions selected in the same cycle).
 *
 * Structure modelled (Fig 7): an associative Tag Array mapping a
 * trace's start PC to its Data Array location, and a banked,
 * set-associative Data Array holding fixed-size blocks of instruction
 * slots (default eight) with next-set chaining and an end-of-trace
 * marker.  Here the TA is an exact map with an entry-count limit and
 * the DA a block-budget pool with trace-granular LRU replacement:
 * capacity and lookup behaviour (which drive the vortex-style
 * thrashing results) are preserved, while intra-set conflict misses
 * — which the paper's chained-set layout makes rare by construction
 * — are not modelled.  Each slot additionally records its
 * program-order rank inside the trace so replays retire in correct
 * order (an implicit requirement of any real implementation).
 */

#ifndef FLYWHEEL_FLYWHEEL_EXEC_CACHE_HH
#define FLYWHEEL_FLYWHEEL_EXEC_CACHE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace flywheel {

namespace obs { class StatsGroup; }
class BinWriter;
class BinReader;

/**
 * One recorded instruction slot.  Field order is profile-guided
 * (flywheel.layout.v1): replay touches pc/rank/op and the register
 * fields on every slot, while recordedEffAddr is only read when a
 * wrong-path slot is synthesized — it trails the struct.
 */
struct TraceSlot
{
    Addr pc = 0;
    std::uint32_t rank = 0;     ///< program order within the trace
    OpClass op = OpClass::Nop;
    ArchReg dest = kNoArchReg;
    ArchReg src1 = kNoArchReg;
    ArchReg src2 = kNoArchReg;
    bool isCondBranch = false;
    Addr recordedEffAddr = 0;   ///< build-time address (mem ops)
};

/** A group of slots issued in the same cycle. */
struct IssueUnit
{
    std::uint32_t firstSlot = 0;
    std::uint32_t count = 0;
};

/** A complete trace as stored in the Execution Cache. */
struct Trace
{
    Addr startPc = 0;
    std::vector<TraceSlot> slots;   ///< issue order
    std::vector<IssueUnit> units;
    std::vector<std::uint32_t> rankToSlot;  ///< rank -> slot index

    std::uint32_t
    numBlocks(unsigned block_slots) const
    {
        return static_cast<std::uint32_t>(
            (slots.size() + block_slots - 1) / block_slots);
    }

    std::uint32_t length() const
    {
        return static_cast<std::uint32_t>(slots.size());
    }
};

/**
 * Snapshot serialization of a trace: slots field-by-field (TraceSlot
 * has padding bytes), units as packed [firstSlot, count] pairs;
 * rankToSlot is rebuilt on read.  Shared by the Execution Cache and
 * the Flywheel trace builders.
 */
void traceToBin(BinWriter &w, const Trace &t);
std::unique_ptr<Trace> traceFromBin(BinReader &r);

/** Slot/unit array codecs (also used for in-progress trace builders). */
void traceSlotsToBin(BinWriter &w, const std::vector<TraceSlot> &slots);
void traceSlotsFromBin(BinReader &r, std::vector<TraceSlot> *out);
void issueUnitsToBin(BinWriter &w, const std::vector<IssueUnit> &units);
void issueUnitsFromBin(BinReader &r, std::vector<IssueUnit> *out);

/**
 * Trace store with a block budget (DA capacity) and an entry budget
 * (TA capacity); trace-granular LRU replacement.
 */
class ExecCache
{
  public:
    /**
     * @param total_blocks DA capacity in blocks (128K/64B = 2048)
     * @param block_slots  instruction slots per block (8)
     * @param ta_entries   Tag Array capacity
     */
    ExecCache(unsigned total_blocks, unsigned block_slots,
              unsigned ta_entries);

    /** Search the TA for a trace starting at @p pc (LRU touch). */
    Trace *lookup(Addr pc);

    /**
     * Find without touching the LRU state (snapshot restore rebinds
     * live replay pointers through this; a lookup() here would skew
     * replacement behaviour against an uninterrupted run).
     */
    Trace *find(Addr pc);

    /** True if a trace starting at @p pc exists (no LRU update). */
    bool contains(Addr pc) const;

    /**
     * Store @p trace, evicting least-recently-used traces as needed.
     * A trace with the same start PC is replaced.  Traces larger than
     * the whole DA are rejected.
     * @return true if stored.
     */
    bool insert(std::unique_ptr<Trace> trace);

    /** Drop every trace (register pool redistribution). */
    void invalidateAll();

    /**
     * Pin/unpin the trace starting at @p pc: pinned traces (the one
     * currently replaying and the one queued to replay next) are
     * never chosen as replacement victims.
     */
    void pin(Addr pc) { pinned_.push_back(pc); }
    void unpin(Addr pc);

    /** Drop the trace starting at @p pc (must not be pinned). */
    void erase(Addr pc);

    /**
     * Start PCs of every resident trace, in ascending order (for
     * inspection and fault-injection tests; pair with lookup() to
     * reach the stored traces).
     */
    std::vector<Addr> tracePcs() const;

    unsigned blockSlots() const { return blockSlots_; }
    unsigned usedBlocks() const { return usedBlocks_; }
    unsigned totalBlocks() const { return totalBlocks_; }
    std::size_t traceCount() const { return traces_.size(); }
    std::uint64_t evictions() const { return evictions_.value(); }

    /** Register occupancy gauges and eviction counter. */
    void registerStats(obs::StatsGroup &group) const;

    /** Serialize every resident trace plus LRU/pin/budget state. */
    void save(BinWriter &w) const;
    /** Restore state saved by save() (geometry must match). */
    void restore(BinReader &r);

  private:
    // The trace store stays on the heap (unordered_map of owning
    // pointers): trace insert/evict churn is unbounded over a run,
    // which a lifetime-scoped arena cannot recycle.
    struct Entry
    {
        std::unique_ptr<Trace> trace;
        std::uint64_t lastUse = 0;
    };

    bool isPinned(Addr pc) const;
    /** @return false if every resident trace is pinned. */
    bool evictLru();

    unsigned totalBlocks_;  // lint: nosnapshot(geometry checked by restore, not mutated)
    unsigned blockSlots_;   // lint: nosnapshot(construction-time config)
    unsigned taEntries_;    // lint: nosnapshot(construction-time config)
    unsigned usedBlocks_ = 0;
    std::uint64_t useClock_ = 0;
    std::unordered_map<Addr, Entry> traces_;
    std::vector<Addr> pinned_;
    Counter evictions_;
};

} // namespace flywheel

#endif // FLYWHEEL_FLYWHEEL_EXEC_CACHE_HH

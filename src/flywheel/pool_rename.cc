#include "flywheel/pool_rename.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"
#include "obs/stats_registry.hh"
#include "snapshot/bincodec.hh"

namespace flywheel {

PoolRenameUnit::PoolRenameUnit(Arena &arena, unsigned phys_regs,
                               unsigned min_pool)
    : physRegs_(phys_regs), minPool_(std::max(2u, min_pool)),
      pools_(arena)
{
    pools_.resize(kNumArchRegs);
    FW_ASSERT(phys_regs >= kNumArchRegs * minPool_,
              "not enough physical registers for the minimum pools");
    // Initial layout: equal shares.
    std::vector<std::uint32_t> sizes(kNumArchRegs,
                                     phys_regs / kNumArchRegs);
    std::uint32_t spare = phys_regs % kNumArchRegs;
    for (std::uint32_t i = 0; i < spare; ++i)
        ++sizes[i];
    layoutPools(sizes);
}

void
PoolRenameUnit::layoutPools(const std::vector<std::uint32_t> &sizes)
{
    std::uint32_t base = 0;
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        pools_[r].base = base;
        pools_[r].size = sizes[r];
        pools_[r].lastSlot = 0;
        pools_[r].inflight = 0;
        base += sizes[r];
    }
    FW_ASSERT(base <= physRegs_, "pool layout exceeds register file");
}

bool
PoolRenameUnit::canAllocate(ArchReg r) const
{
    const Pool &p = pools_[r];
    return p.inflight + 1 < p.size;
}

PhysReg
PoolRenameUnit::allocate(ArchReg r, std::uint16_t &prev_slot_out)
{
    Pool &p = pools_[r];
    FW_ASSERT(p.inflight + 1 < p.size, "pool overflow on r%u", r);
    prev_slot_out = p.lastSlot;
    p.lastSlot = static_cast<std::uint16_t>((p.lastSlot + 1) % p.size);
    ++p.inflight;
    ++p.writes;
    return static_cast<PhysReg>(p.base + p.lastSlot);
}

void
PoolRenameUnit::release(ArchReg r)
{
    Pool &p = pools_[r];
    FW_ASSERT(p.inflight > 0, "release without in-flight write on r%u",
              r);
    --p.inflight;
}

void
PoolRenameUnit::rollback(ArchReg r, std::uint16_t prev_slot)
{
    Pool &p = pools_[r];
    FW_ASSERT(p.inflight > 0, "rollback without in-flight write");
    --p.inflight;
    p.lastSlot = prev_slot;
}

PhysReg
PoolRenameUnit::current(ArchReg r) const
{
    const Pool &p = pools_[r];
    return static_cast<PhysReg>(p.base + p.lastSlot);
}

void
PoolRenameUnit::noteStall(ArchReg r)
{
    ++pools_[r].stalls;
    ++stallsSinceCheck_;
}

bool
PoolRenameUnit::redistribute()
{
    // Demand metric: write frequency with a mild stall bonus.  The
    // steady-state pool size a register needs is proportional to its
    // in-flight write count, i.e. its write rate; weighting stalls
    // too aggressively lets a few registers starve the rest and the
    // allocation oscillates between redistributions.
    std::vector<double> demand(kNumArchRegs);
    double total = 0.0;
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        demand[r] = double(pools_[r].writes) +
                    4.0 * double(pools_[r].stalls);
        total += demand[r];
    }
    if (total <= 0.0)
        return false;

    const unsigned distributable = physRegs_ - kNumArchRegs * minPool_;
    std::vector<std::uint32_t> sizes(kNumArchRegs, minPool_);
    std::vector<double> fractional(kNumArchRegs);
    unsigned assigned = 0;
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        double share = demand[r] / total * distributable;
        std::uint32_t whole = static_cast<std::uint32_t>(share);
        sizes[r] += whole;
        assigned += whole;
        fractional[r] = share - whole;
    }
    // Largest-remainder assignment of the leftovers.
    std::vector<unsigned> order(kNumArchRegs);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return fractional[a] > fractional[b];
    });
    for (unsigned i = 0; assigned < distributable && i < kNumArchRegs;
         ++i, ++assigned) {
        ++sizes[order[i]];
    }

    bool changed = false;
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        FW_ASSERT(pools_[r].inflight == 0,
                  "redistribution with in-flight writes");
        if (sizes[r] != pools_[r].size)
            changed = true;
    }
    if (changed)
        layoutPools(sizes);
    for (auto &p : pools_) {
        p.writes = 0;
        p.stalls = 0;
    }
    stallsSinceCheck_ = 0;
    return changed;
}

void
PoolRenameUnit::resetWindow()
{
    for (auto &p : pools_) {
        p.writes = 0;
        p.stalls = 0;
    }
    stallsSinceCheck_ = 0;
}

void
PoolRenameUnit::save(BinWriter &w) const
{
    // Field-by-field: Pool has padding after lastSlot.
    w.u64(pools_.size());
    for (const Pool &p : pools_) {
        w.u32(p.base);
        w.u32(p.size);
        w.u16(p.lastSlot);
        w.u32(p.inflight);
        w.u64(p.writes);
        w.u64(p.stalls);
    }
    w.u64(stallsSinceCheck_);
}

void
PoolRenameUnit::restore(BinReader &r)
{
    const std::uint64_t count = r.u64();
    FW_ASSERT(count == pools_.size(),
              "rename-pool snapshot geometry mismatch");
    std::uint64_t total = 0;
    for (Pool &p : pools_) {
        p.base = r.u32();
        p.size = r.u32();
        p.lastSlot = r.u16();
        p.inflight = r.u32();
        p.writes = r.u64();
        p.stalls = r.u64();
        total += p.size;
    }
    FW_ASSERT(total <= physRegs_,
              "rename-pool snapshot exceeds the register file");
    stallsSinceCheck_ = r.u64();
}

unsigned
PoolRenameUnit::poolsLargerThan(unsigned n) const
{
    unsigned count = 0;
    for (const auto &p : pools_) {
        if (p.size > n)
            ++count;
    }
    return count;
}

void
PoolRenameUnit::registerStats(obs::StatsGroup &group) const
{
    group.formula("writes", [this] {
        double total = 0;
        for (const Pool &p : pools_)
            total += double(p.writes);
        return total;
    });
    group.formula("stalls", [this] {
        double total = 0;
        for (const Pool &p : pools_)
            total += double(p.stalls);
        return total;
    });
    group.formula("stallsSinceCheck",
                  [this] { return double(stallsSinceCheck_); });
}

} // namespace flywheel

#include "flywheel/pool_rename.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"
#include "obs/stats_registry.hh"
#include "snapshot/snapshot.hh"

namespace flywheel {

PoolRenameUnit::PoolRenameUnit(unsigned phys_regs, unsigned min_pool)
    : physRegs_(phys_regs), minPool_(std::max(2u, min_pool)),
      pools_(kNumArchRegs)
{
    FW_ASSERT(phys_regs >= kNumArchRegs * minPool_,
              "not enough physical registers for the minimum pools");
    // Initial layout: equal shares.
    std::vector<std::uint32_t> sizes(kNumArchRegs,
                                     phys_regs / kNumArchRegs);
    std::uint32_t spare = phys_regs % kNumArchRegs;
    for (std::uint32_t i = 0; i < spare; ++i)
        ++sizes[i];
    layoutPools(sizes);
}

void
PoolRenameUnit::layoutPools(const std::vector<std::uint32_t> &sizes)
{
    std::uint32_t base = 0;
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        pools_[r].base = base;
        pools_[r].size = sizes[r];
        pools_[r].lastSlot = 0;
        pools_[r].inflight = 0;
        base += sizes[r];
    }
    FW_ASSERT(base <= physRegs_, "pool layout exceeds register file");
}

bool
PoolRenameUnit::canAllocate(ArchReg r) const
{
    const Pool &p = pools_[r];
    return p.inflight + 1 < p.size;
}

PhysReg
PoolRenameUnit::allocate(ArchReg r, std::uint16_t &prev_slot_out)
{
    Pool &p = pools_[r];
    FW_ASSERT(p.inflight + 1 < p.size, "pool overflow on r%u", r);
    prev_slot_out = p.lastSlot;
    p.lastSlot = static_cast<std::uint16_t>((p.lastSlot + 1) % p.size);
    ++p.inflight;
    ++p.writes;
    return static_cast<PhysReg>(p.base + p.lastSlot);
}

void
PoolRenameUnit::release(ArchReg r)
{
    Pool &p = pools_[r];
    FW_ASSERT(p.inflight > 0, "release without in-flight write on r%u",
              r);
    --p.inflight;
}

void
PoolRenameUnit::rollback(ArchReg r, std::uint16_t prev_slot)
{
    Pool &p = pools_[r];
    FW_ASSERT(p.inflight > 0, "rollback without in-flight write");
    --p.inflight;
    p.lastSlot = prev_slot;
}

PhysReg
PoolRenameUnit::current(ArchReg r) const
{
    const Pool &p = pools_[r];
    return static_cast<PhysReg>(p.base + p.lastSlot);
}

void
PoolRenameUnit::noteStall(ArchReg r)
{
    ++pools_[r].stalls;
    ++stallsSinceCheck_;
}

bool
PoolRenameUnit::redistribute()
{
    // Demand metric: write frequency with a mild stall bonus.  The
    // steady-state pool size a register needs is proportional to its
    // in-flight write count, i.e. its write rate; weighting stalls
    // too aggressively lets a few registers starve the rest and the
    // allocation oscillates between redistributions.
    std::vector<double> demand(kNumArchRegs);
    double total = 0.0;
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        demand[r] = double(pools_[r].writes) +
                    4.0 * double(pools_[r].stalls);
        total += demand[r];
    }
    if (total <= 0.0)
        return false;

    const unsigned distributable = physRegs_ - kNumArchRegs * minPool_;
    std::vector<std::uint32_t> sizes(kNumArchRegs, minPool_);
    std::vector<double> fractional(kNumArchRegs);
    unsigned assigned = 0;
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        double share = demand[r] / total * distributable;
        std::uint32_t whole = static_cast<std::uint32_t>(share);
        sizes[r] += whole;
        assigned += whole;
        fractional[r] = share - whole;
    }
    // Largest-remainder assignment of the leftovers.
    std::vector<unsigned> order(kNumArchRegs);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return fractional[a] > fractional[b];
    });
    for (unsigned i = 0; assigned < distributable && i < kNumArchRegs;
         ++i, ++assigned) {
        ++sizes[order[i]];
    }

    bool changed = false;
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        FW_ASSERT(pools_[r].inflight == 0,
                  "redistribution with in-flight writes");
        if (sizes[r] != pools_[r].size)
            changed = true;
    }
    if (changed)
        layoutPools(sizes);
    for (auto &p : pools_) {
        p.writes = 0;
        p.stalls = 0;
    }
    stallsSinceCheck_ = 0;
    return changed;
}

void
PoolRenameUnit::resetWindow()
{
    for (auto &p : pools_) {
        p.writes = 0;
        p.stalls = 0;
    }
    stallsSinceCheck_ = 0;
}

void
PoolRenameUnit::save(Json &out) const
{
    out = Json::object();
    // Positional [base, size, lastSlot, inflight, writes, stalls]
    // per architected register.
    std::vector<std::uint64_t> pools;
    pools.reserve(pools_.size() * 6);
    for (const Pool &p : pools_) {
        pools.push_back(p.base);
        pools.push_back(p.size);
        pools.push_back(p.lastSlot);
        pools.push_back(p.inflight);
        pools.push_back(p.writes);
        pools.push_back(p.stalls);
    }
    out.add("pools", packedU64Json(pools));
    out.add("stallsSinceCheck", stallsSinceCheck_);
}

void
PoolRenameUnit::restore(const Json &in)
{
    std::vector<std::uint64_t> pools;
    packedU64From(in["pools"], &pools);
    FW_ASSERT(pools.size() == pools_.size() * 6,
              "rename-pool snapshot geometry mismatch");
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < pools_.size(); ++r) {
        Pool &p = pools_[r];
        p.base = static_cast<std::uint32_t>(pools[r * 6]);
        p.size = static_cast<std::uint32_t>(pools[r * 6 + 1]);
        p.lastSlot = static_cast<std::uint16_t>(pools[r * 6 + 2]);
        p.inflight = static_cast<std::uint32_t>(pools[r * 6 + 3]);
        p.writes = pools[r * 6 + 4];
        p.stalls = pools[r * 6 + 5];
        total += p.size;
    }
    FW_ASSERT(total <= physRegs_,
              "rename-pool snapshot exceeds the register file");
    stallsSinceCheck_ = in["stallsSinceCheck"].asU64();
}

unsigned
PoolRenameUnit::poolsLargerThan(unsigned n) const
{
    unsigned count = 0;
    for (const auto &p : pools_) {
        if (p.size > n)
            ++count;
    }
    return count;
}

void
PoolRenameUnit::registerStats(obs::StatsGroup &group) const
{
    group.formula("writes", [this] {
        double total = 0;
        for (const Pool &p : pools_)
            total += double(p.writes);
        return total;
    });
    group.formula("stalls", [this] {
        double total = 0;
        for (const Pool &p : pools_)
            total += double(p.stalls);
        return total;
    });
    group.formula("stallsSinceCheck",
                  [this] { return double(stallsSinceCheck_); });
}

} // namespace flywheel

#include "flywheel/flywheel_core.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "obs/layout_profile.hh"
#include "snapshot/bincodec.hh"
#include "snapshot/snapshot.hh"

namespace flywheel {

FlywheelCore::FlywheelCore(const CoreParams &params,
                           WorkloadStream &stream)
    : CoreBase(params, stream, params.poolPhysRegs),
      pools_(arena_, params.poolPhysRegs, params.minPoolSize),
      ec_(params.ecTotalBlocks, params.ecBlockSlots, params.ecTaEntries),
      feP_(static_cast<Tick>(std::llround(params.fePeriodPs))),
      beBase_(static_cast<Tick>(std::llround(params.basePeriodPs))),
      beFast_(static_cast<Tick>(std::llround(params.beFastPeriodPs))),
      beCur_(beBase_)
{
    // The Register Update stage adds one stage to the back-end in
    // both operating modes (Section 3.5: "it requires an additional
    // pipeline stage ... will cost about 2-3% in performance").
    params_.regReadStages = params.regReadStages + 1;

    ec_.registerStats(statsRegistry_.group("core.ec"));
    pools_.registerStats(statsRegistry_.group("core.pools"));
}

std::string
FlywheelCore::progressDebug() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "[mode=%d drain=%d neednew=%d pend=%d pendAfter=%llu "
                  "pendTick=%llu replay=%d alloc=%u/%u unit=%u/%zu "
                  "valid=%u divR=%d]",
                  int(mode_), int(draining_), int(needNewTrace_),
                  int(pending_.valid),
                  (unsigned long long)pending_.afterRetire,
                  (unsigned long long)pending_.afterRetireTick,
                  int(replayActive()), replay_.allocated,
                  replay_.allocLimit, replay_.nextUnit,
                  replay_.trace ? replay_.trace->units.size() : 0,
                  replay_.valid, int(replay_.divergenceResolved));
    char buf2[256];
    std::snprintf(buf2, sizeof(buf2),
                  "[bld act=%d bnd=%d app=%llu s=%llu e=%llu]"
                  "[fin act=%d bnd=%d app=%llu s=%llu e=%llu]",
                  int(builder_.active), int(builder_.bounded),
                  (unsigned long long)builder_.appended,
                  (unsigned long long)builder_.startSeq,
                  (unsigned long long)builder_.endSeq,
                  int(finalizing_.active), int(finalizing_.bounded),
                  (unsigned long long)finalizing_.appended,
                  (unsigned long long)finalizing_.startSeq,
                  (unsigned long long)finalizing_.endSeq);
    return std::string(buf) + buf2;
}

double
FlywheelCore::ecResidency() const
{
    return stats_.retired
        ? double(stats_.ecRetired) / double(stats_.retired)
        : 0.0;
}

// ---------------------------------------------------------------------------
// State snapshots.
// ---------------------------------------------------------------------------

namespace {

void
builderToBin(BinWriter &w, const FlywheelCore::Builder &b)
{
    w.b(b.active);
    w.b(b.bounded);
    w.u64(b.startPc);
    w.u64(b.startSeq);
    w.u64(b.endSeq);
    w.u64(b.appended);
    traceSlotsToBin(w, b.slots);
    issueUnitsToBin(w, b.units);
}

void
builderFromBin(BinReader &r, FlywheelCore::Builder *out)
{
    *out = FlywheelCore::Builder{};
    out->active = r.b();
    out->bounded = r.b();
    out->startPc = r.u64();
    out->startSeq = r.u64();
    out->endSeq = r.u64();
    out->appended = r.u64();
    traceSlotsFromBin(r, &out->slots);
    issueUnitsFromBin(r, &out->units);
}

} // namespace

void
FlywheelCore::save(Snapshot &snap) const
{
    CoreBase::save(snap);
    BinWriter w;
    w.str("flywheel");

    pools_.save(w);
    ec_.save(w);

    w.b(mode_ == Mode::Exec);
    w.u64(beCur_);
    w.u64(nextFe_);
    w.u64(nextBe_);
    builderToBin(w, builder_);
    builderToBin(w, finalizing_);
    w.b(needNewTrace_);
    w.b(draining_);
    w.u64(drainLookupPc_);

    // A live replay/pending trace is referenced by start PC; both are
    // pinned in the EC while live, so the PC resolves on restore.
    w.u64(replay_.trace ? replay_.trace->startPc : kNoRobIndex);
    w.u64(replay_.actual.size());
    for (const DynInst &d : replay_.actual)
        dynInstToBin(w, d);
    w.u32(replay_.valid);
    w.b(replay_.divergent);
    w.b(replay_.divergenceResolved);
    w.u32(replay_.nextUnit);
    w.u32(replay_.allocated);
    w.u32(replay_.allocLimit);
    w.u32(replay_.lastUnit);
    w.u32(replay_.blocksRead);
    w.u64(replay_.start);
    w.u64(replay_.baseSeq);
    w.b(replay_.endHandled);
    // byRank keeps pointers for the whole trace, including ranks that
    // already retired — those are stale (their ROB entries are gone;
    // the replay logic never touches them again) and must serialize
    // as "none".  A stale pointer may even alias a reused ring slot,
    // so membership alone is not enough: the entry must also BE that
    // rank of this replay (sequence-number identity).
    w.u64(replay_.byRank.size());
    for (std::size_t rank = 0; rank < replay_.byRank.size(); ++rank) {
        const InFlightInst *p = replay_.byRank[rank];
        std::uint64_t idx = kNoRobIndex;
        if (p != nullptr) {
            for (std::size_t i = 0; i < rob_.size(); ++i) {
                if (&rob_[i] != p)
                    continue;
                if (rob_[i].fromEc &&
                    rob_[i].arch.seq == replay_.baseSeq + rank)
                    idx = i;
                break;
            }
        }
        w.u64(idx);
    }

    w.b(pending_.valid);
    w.u64(pending_.trace ? pending_.trace->startPc : kNoRobIndex);
    w.u64(pending_.earliest);
    w.u64(pending_.afterRetire);
    w.u64(pending_.afterRetireTick);

    w.u64(beCyclesSinceCheck_);
    w.b(redistributionArmed_);
    snap.addSection("core", w.take());
}

void
FlywheelCore::restore(const Snapshot &snap)
{
    CoreBase::restore(snap);
    BinReader r = snap.section("core");
    const std::string type = r.str();
    FW_ASSERT(type == "flywheel",
              "restoring a %s snapshot into a Flywheel core",
              type.c_str());

    pools_.restore(r);
    ec_.restore(r);

    mode_ = r.b() ? Mode::Exec : Mode::Create;
    beCur_ = r.u64();
    nextFe_ = r.u64();
    nextBe_ = r.u64();
    builderFromBin(r, &builder_);
    builderFromBin(r, &finalizing_);
    needNewTrace_ = r.b();
    draining_ = r.b();
    drainLookupPc_ = r.u64();

    replay_.reset();
    const std::uint64_t replay_pc = r.u64();
    if (replay_pc != kNoRobIndex) {
        replay_.trace = ec_.find(replay_pc);
        FW_ASSERT(replay_.trace != nullptr,
                  "replayed trace 0x%llx missing from the restored EC",
                  (unsigned long long)replay_pc);
    }
    const std::uint64_t actual_n = r.u64();
    for (std::uint64_t i = 0; i < actual_n; ++i)
        replay_.actual.push_back(dynInstFromBin(r));
    replay_.valid = r.u32();
    replay_.divergent = r.b();
    replay_.divergenceResolved = r.b();
    replay_.nextUnit = r.u32();
    replay_.allocated = r.u32();
    replay_.allocLimit = r.u32();
    replay_.lastUnit = r.u32();
    replay_.blocksRead = r.u32();
    replay_.start = r.u64();
    replay_.baseSeq = r.u64();
    replay_.endHandled = r.b();
    const std::uint64_t by_rank_n = r.u64();
    for (std::uint64_t i = 0; i < by_rank_n; ++i)
        replay_.byRank.push_back(robAt(r.u64()));

    pending_ = PendingReplay{};
    pending_.valid = r.b();
    const std::uint64_t pending_pc = r.u64();
    if (pending_pc != kNoRobIndex) {
        pending_.trace = ec_.find(pending_pc);
        FW_ASSERT(pending_.trace != nullptr,
                  "pending trace 0x%llx missing from the restored EC",
                  (unsigned long long)pending_pc);
    }
    pending_.earliest = r.u64();
    pending_.afterRetire = r.u64();
    pending_.afterRetireTick = r.u64();

    beCyclesSinceCheck_ = r.u64();
    redistributionArmed_ = r.b();
}

// ---------------------------------------------------------------------------
// Renaming hooks (two-phase pool renaming; Section 3.5).
// ---------------------------------------------------------------------------

bool
FlywheelCore::canRenameDest(const InFlightInst &inst)
{
    if (!inst.arch.hasDest())
        return true;
    if (pools_.canAllocate(inst.arch.dest))
        return true;
    pools_.noteStall(inst.arch.dest);
    return false;
}

void
FlywheelCore::renameSrcs(InFlightInst &inst)
{
    if (inst.arch.src1 != kNoArchReg)
        inst.src1Phys = pools_.current(inst.arch.src1);
    if (inst.arch.src2 != kNoArchReg)
        inst.src2Phys = pools_.current(inst.arch.src2);
    // Register Update (RT/SRT read) runs in both operating modes.
    ++events_.updateOps;
}

void
FlywheelCore::renameDest(InFlightInst &inst)
{
    if (!inst.arch.hasDest())
        return;
    inst.destPhys = pools_.allocate(inst.arch.dest, inst.poolPrevSlot);
    regReady_[inst.destPhys] = kTickMax;
}

void
FlywheelCore::onRetire(InFlightInst &inst, Tick now)
{
    if (inst.arch.hasDest())
        pools_.release(inst.arch.dest);
    ++events_.updateOps;  // FRT written with the retiring PO
    if (pending_.valid && pending_.afterRetire == inst.arch.seq)
        pending_.afterRetireTick = now;
}

// ---------------------------------------------------------------------------
// Trace building (Section 3.3, trace segment build phase).
// ---------------------------------------------------------------------------

bool
FlywheelCore::fetchGate(Addr pc, Tick now)
{
    (void)now;
    if (!params_.execCacheEnabled)
        return true;
    if (draining_)
        return false;

    if (needNewTrace_) {
        FW_ASSERT(!builder_.active, "starting a trace over another");
        builder_ = Builder{};
        builder_.active = true;
        builder_.startPc = pc;
        builder_.startSeq = stream_.peek(0).seq;
        needNewTrace_ = false;
        return true;
    }

    if (builder_.active && !builder_.bounded) {
        const InstSeqNum next_seq = stream_.peek(0).seq;
        const std::uint64_t fetched = next_seq - builder_.startSeq;
        const bool closure = pc == builder_.startPc &&
                             fetched >= params_.minTraceInstrs &&
                             builder_.units.size() >=
                                 params_.minTraceUnits;
        const bool capped = fetched >= std::uint64_t(
            params_.maxTraceBlocks) * params_.ecBlockSlots;
        if (closure || capped) {
            builder_.bounded = true;
            builder_.endSeq = next_seq - 1;
            draining_ = true;
            drainLookupPc_ = pc;
            // If every instruction already issued, finalize at once.
            if (builder_.appended == builder_.expected())
                finalizeBuilder(builder_, now);
            return false;
        }
    }
    return true;
}

void
FlywheelCore::onIssueGroup(const std::vector<InFlightInst *> &group,
                           Tick now)
{
    if (!params_.execCacheEnabled)
        return;
    appendToBuilder(finalizing_, group, now);
    appendToBuilder(builder_, group, now);
#ifdef FW_TRACE_DEBUG
    for (const InFlightInst *p : group) {
        if (p->fromEc)
            continue;
        auto in = [&](const Builder &b) {
            return b.active && p->arch.seq >= b.startSeq &&
                   (!b.bounded || p->arch.seq <= b.endSeq);
        };
        if (!in(finalizing_) && !in(builder_)) {
            std::fprintf(stderr,
                         "ORPHAN seq=%llu pc=0x%llx %s\n",
                         (unsigned long long)p->arch.seq,
                         (unsigned long long)p->arch.pc,
                         progressDebug().c_str());
        }
    }
#endif
}

void
FlywheelCore::appendToBuilder(Builder &b,
                              const std::vector<InFlightInst *> &group,
                              Tick)
{
    if (!b.active)
        return;
    IssueUnit unit;
    unit.firstSlot = static_cast<std::uint32_t>(b.slots.size());
    for (const InFlightInst *p : group) {
        if (p->fromEc)
            continue;
        const InstSeqNum seq = p->arch.seq;
        if (seq < b.startSeq || (b.bounded && seq > b.endSeq))
            continue;
        TraceSlot slot;
        slot.pc = p->arch.pc;
        slot.op = p->arch.op;
        slot.dest = p->arch.dest;
        slot.src1 = p->arch.src1;
        slot.src2 = p->arch.src2;
        slot.recordedEffAddr = p->arch.effAddr;
        slot.isCondBranch = p->arch.isCondBranch;
        slot.rank = static_cast<std::uint32_t>(seq - b.startSeq);
        b.slots.push_back(slot);
        ++b.appended;
        ++unit.count;
    }
    if (unit.count > 0) {
        b.units.push_back(unit);
        ++events_.fillBufferOps;
    }

    // A bounded builder whose last instruction has issued is complete.
    if (b.bounded && b.appended == b.expected())
        finalizeBuilder(b, 0);
}

void
FlywheelCore::finalizeBuilder(Builder &b, Tick)
{
    FW_ASSERT(b.active && b.bounded, "finalizing an unbounded builder");
    b.active = false;

    if (b.units.size() < params_.minTraceUnits)
        return;  // too short to be worth storing

    auto trace = std::make_unique<Trace>();
    trace->startPc = b.startPc;
    trace->slots = std::move(b.slots);
    trace->units = std::move(b.units);
    trace->rankToSlot.assign(trace->slots.size(), 0);
    for (std::uint32_t i = 0; i < trace->slots.size(); ++i) {
        FW_ASSERT(trace->slots[i].rank < trace->rankToSlot.size(),
                  "trace rank out of range");
        trace->rankToSlot[trace->slots[i].rank] = i;
    }

    events_.ecDaWrites += trace->numBlocks(ec_.blockSlots());
    if (ec_.insert(std::move(trace)))
        ++stats_.tracesBuilt;
}

void
FlywheelCore::maybeCompleteDrain(Tick now)
{
    if (!draining_ || builder_.active)
        return;  // builder finalizes from appendToBuilder
    // All of the trace's instructions have issued and the trace has
    // been stored; search the EC at the next PC (closure lookups hit
    // the trace just built).
    draining_ = false;
    Tick extra = params_.srtEnabled ? 1 : 1 + params_.ecReadCycles;
    InstSeqNum after = params_.srtEnabled ? 0 : builder_.endSeq;
    if (ecLookupAndQueue(drainLookupPc_, now, after, extra)) {
        // Hold fetch so the stream stays aligned with the replay.
        fetchStallUntil_ = kTickMax;
    } else {
        needNewTrace_ = true;  // miss: keep fetching, build a new trace
    }
}

// ---------------------------------------------------------------------------
// Mispredict handling in both modes.
// ---------------------------------------------------------------------------

void
FlywheelCore::onMispredictResolved(InFlightInst &inst, Tick now)
{
    if (inst.fromEc) {
        resolveDivergence(inst, now);
        return;
    }

    // Trace-creation mode: the trace ends at the mispredicted branch.
    waitingOnMispredict_ = false;
    if (params_.execCacheEnabled && builder_.active &&
        !builder_.bounded) {
        builder_.bounded = true;
        builder_.endSeq = inst.arch.seq;
        // In the rare case a previous trace is still waiting for
        // straggler instructions to issue, drop it rather than track
        // an unbounded finalize list.
        if (finalizing_.active)
            finalizing_ = Builder{};
        finalizing_ = std::move(builder_);
        builder_ = Builder{};
        // If everything already issued, finalize immediately.
        if (finalizing_.active &&
            finalizing_.appended == finalizing_.expected()) {
            finalizeBuilder(finalizing_, now);
        }
    }

    if (params_.execCacheEnabled &&
        ecLookupAndQueue(inst.arch.nextPc(), now, inst.arch.seq,
                         1 + params_.ecReadCycles)) {
        // Hit: switch to trace execution once the pipeline drains and
        // the checkpoint constraint is met.  Fetch stays stalled.
        fetchStallUntil_ = kTickMax;
    } else {
        // Miss (or no EC): restart the front-end.  The redirect
        // crosses the domain boundary (WriteBack -> Fetch FIFO).
        needNewTrace_ = true;
        resumeFetch(now + beCur_ + feP_);
    }
}

// ---------------------------------------------------------------------------
// Trace replay (Section 3.3, trace execution phase).
// ---------------------------------------------------------------------------

bool
FlywheelCore::ecLookupAndQueue(Addr pc, Tick now,
                               InstSeqNum after_retire,
                               Tick extra_delay_cycles)
{
    ++stats_.ecLookups;
    ++events_.ecTaLookups;
    Trace *t = ec_.lookup(pc);
    if (t == nullptr)
        return false;
    ++stats_.ecHits;
    ec_.pin(pc);
    pending_.valid = true;
    pending_.trace = t;
    pending_.earliest = now + extra_delay_cycles * beFast_;
    pending_.afterRetire = after_retire;
    pending_.afterRetireTick = kTickMax;
    return true;
}

void
FlywheelCore::maybeStartPendingReplay(Tick now)
{
    if (!pending_.valid || replayActive())
        return;
    if (!iw_.empty() || !feQueue_.empty())
        return;
    if (pending_.afterRetire != 0) {
        if (pending_.afterRetireTick == kTickMax) {
            if (now >= pending_.earliest)
                ++stats_.checkpointStallCycles;
            return;
        }
        if (now < pending_.afterRetireTick + beCur_)
            return;
    }
    if (now < pending_.earliest)
        return;
    enterExec(now);
}

void
FlywheelCore::enterExec(Tick now)
{
    Trace *t = pending_.trace;
    FW_ASSERT(t != nullptr, "entering exec without a trace");
    if (stream_.peek(0).pc != t->startPc) {
        FW_PANIC("replay misaligned: trace=0x%llx peek=0x%llx "
                 "after=%llu mode=%d drain=%d neednew=%d lookups=%llu "
                 "changes=%llu retired=%llu",
                 (unsigned long long)t->startPc,
                 (unsigned long long)stream_.peek(0).pc,
                 (unsigned long long)pending_.afterRetire, (int)mode_,
                 (int)draining_, (int)needNewTrace_,
                 (unsigned long long)stats_.ecLookups,
                 (unsigned long long)stats_.traceChanges,
                 (unsigned long long)stats_.retired);
    }

    const std::uint32_t len = t->length();
    std::uint32_t v = 0;
    while (v < len) {
        FW_LAYOUT_TOUCH(TraceSlot, pc);
        if (stream_.peek(v).pc != t->slots[t->rankToSlot[v]].pc)
            break;
        ++v;
    }
    FW_ASSERT(v >= 1, "trace start matched but first slot differs");

    replay_.reset();
    replay_.trace = t;
    replay_.valid = v;
    replay_.divergent = v < len;
    replay_.allocLimit = len;
    replay_.lastUnit = static_cast<std::uint32_t>(t->units.size()) - 1;
    replay_.actual.reserve(v);
    for (std::uint32_t k = 0; k < v; ++k)
        replay_.actual.push_back(stream_.next());
    replay_.baseSeq = replay_.actual.front().seq;
    replay_.byRank.assign(len, nullptr);
    replay_.start = now;

    if (replay_.divergent) {
        const TraceSlot &s = t->slots[t->rankToSlot[v - 1]];
        FW_ASSERT(s.isCondBranch,
                  "trace divergence not caused by a conditional branch");
    }

    pending_ = PendingReplay{};
    mode_ = Mode::Exec;
    beCur_ = beFast_;
    fetchStallUntil_ = kTickMax;  // front-end is clock gated
    ++stats_.traceChanges;
    ++events_.checkpointOps;

    if (tracer_) {
        tracer_->instant(obs::TraceCat::EcMode, "ec_enter", now, len,
                         v);
        tracer_->instant(obs::TraceCat::Replay, "replay_start", now,
                         t->startPc, len);
        tracer_->instant(obs::TraceCat::ClockPlan, "be_fast", now,
                         beFast_);
    }
}

DynInst
FlywheelCore::synthesizeWrongPath(const TraceSlot &slot,
                                  InstSeqNum seq) const
{
    DynInst d;
    d.seq = seq;
    d.pc = slot.pc;
    d.op = slot.op;
    d.dest = slot.dest;
    d.src1 = slot.src1;
    d.src2 = slot.src2;
    d.isCondBranch = slot.isCondBranch;
    FW_LAYOUT_TOUCH(TraceSlot, recordedEffAddr);
    d.effAddr = slot.recordedEffAddr;
    return d;
}

void
FlywheelCore::replayAllocate(Tick)
{
    if (!replayActive())
        return;
    Trace *t = replay_.trace;
    for (unsigned i = 0;
         i < params_.issueWidth && replay_.allocated < replay_.allocLimit;
         ++i) {
        const std::uint32_t rank = replay_.allocated;
        const TraceSlot &s = t->slots[t->rankToSlot[rank]];
        FW_LAYOUT_TOUCH(TraceSlot, op);
        const bool wrong = rank >= replay_.valid;

        if (rob_.size() >= params_.robEntries)
            return;
        if (isMemOp(s.op) && lsq_.full())
            return;

        InFlightInst ifi;
        ifi.arch = wrong
            ? synthesizeWrongPath(s, replay_.baseSeq + rank)
            : replay_.actual[rank];
        ifi.fromEc = true;
        ifi.traceRank = rank;
        ifi.squashed = wrong;

        if (!canRenameDest(ifi)) {
            if (wrong) {
                // A wrong-path slot blocked on a full pool would
                // deadlock the in-order unit stream against its own
                // squash; it never retires, so drop its destination.
                ifi.arch.dest = kNoArchReg;
            } else {
                ++stats_.renameStalls;
                return;
            }
        }
        renameSrcs(ifi);
        renameDest(ifi);

        if (!wrong && replay_.divergent && rank == replay_.valid - 1)
            ifi.mispredicted = true;  // the diverging branch

        rob_.push_back(std::move(ifi));
        InFlightInst *p = &rob_.back();
        replay_.byRank[rank] = p;
        if (p->isMem()) {
            lsq_.insert(p->arch.seq, p->arch.isStore(),
                        p->arch.effAddr);
            ++events_.lsqOps;
        }
        ++events_.updateOps;
        ++events_.robOps;
        ++replay_.allocated;
    }
}

void
FlywheelCore::replayIssue(Tick now)
{
    if (!replayActive())
        return;
    Trace *t = replay_.trace;
    if (replay_.nextUnit >= t->units.size() ||
        replay_.nextUnit > replay_.lastUnit) {
        return;
    }

    const IssueUnit &u = t->units[replay_.nextUnit];

    // Gather the slots that must issue.  Wrong-path slots are
    // squashed state in flight: they consume issue slots and energy
    // but are never allowed to stall the in-order unit stream (their
    // register bindings may be arbitrarily stale, and a stalled
    // wrong-path slot could otherwise block the very branch whose
    // resolution flushes it).  Once the divergence has been resolved
    // they vanish entirely.
    std::vector<InFlightInst *> &gated = gatedScratch_;
    std::vector<InFlightInst *> &free_slots = freeSlotsScratch_;
    gated.clear();
    free_slots.clear();
    for (std::uint32_t j = u.firstSlot; j < u.firstSlot + u.count; ++j) {
        const std::uint32_t rank = t->slots[j].rank;
        FW_LAYOUT_TOUCH(TraceSlot, rank);
        const bool wrong = rank >= replay_.valid;
        if (wrong && replay_.divergenceResolved)
            continue;
        if (rank >= replay_.allocated) {
            if (wrong)
                continue;  // squashed work: drop rather than wait
            return;  // Register Update has not processed it yet
        }
        if (wrong)
            free_slots.push_back(replay_.byRank[rank]);
        else
            gated.push_back(replay_.byRank[rank]);
    }
    if (gated.empty() && free_slots.empty()) {
        ++replay_.nextUnit;
        return;
    }
    const std::vector<InFlightInst *> &active = gated;

    // Fill-buffer model: block k of the trace is available k fast
    // cycles after the replay started (the initial TA + DA latency is
    // folded into the trace-change penalty).
    const std::uint32_t block =
        (u.firstSlot + u.count - 1) / ec_.blockSlots();
    if (now < replay_.start + Tick(block) * beFast_)
        return;

    // The Issue Unit is atomic: every instruction in it must be ready
    // (in-order VLIW-style interlock at Register Update / RegRead).
    // Stores co-issued earlier in the same unit satisfy a load's
    // disambiguation check, exactly as the recorded same-cycle
    // schedule did at build time.
    std::vector<InstSeqNum> &co_stores = coStoresScratch_;
    co_stores.clear();
    for (InFlightInst *p : active) {
        if (!operandsReady(*p, now))
            return;
        if (p->isLoad() &&
            !lsq_.loadMayIssue(p->arch.seq, co_stores)) {
            return;
        }
        if (p->isStore())
            co_stores.push_back(p->arch.seq);
    }

    // Claim functional units atomically (snapshot into a reused
    // buffer; this runs every trace-execution cycle).
    fus_.save(fuStateScratch_);
    for (InFlightInst *p : active) {
        if (!fus_.tryIssue(p->arch.op, now, double(beFast_))) {
            fus_.restore(fuStateScratch_);
            return;
        }
    }

    for (InFlightInst *p : active)
        issueOne(p, now, beCur_);
    for (InFlightInst *p : free_slots)
        issueOne(p, now, beCur_);

    ++events_.fillBufferOps;
    while (replay_.blocksRead <= block) {
        ++events_.ecDaReads;
        ++replay_.blocksRead;
    }
    ++replay_.nextUnit;
}

void
FlywheelCore::resolveDivergence(InFlightInst &branch, Tick now)
{
    FW_ASSERT(replayActive(), "divergence outside a replay");
    ++stats_.traceDivergences;
    replay_.divergenceResolved = true;
    replay_.allocLimit = std::min(replay_.allocLimit, replay_.valid);

    // Squash the wrong-path tail: allocation is rank-ordered, so all
    // squashed entries sit at the back of the ROB.
    lsq_.squashFrom(replay_.baseSeq + replay_.valid);
    std::uint64_t squashed_n = 0;
    while (!rob_.empty() && rob_.back().squashed) {
        InFlightInst &b = rob_.back();
        // Completion tracking holds issued-incomplete entries by
        // pointer; forget this one while it is still alive.
        dropPendingCompletion(&b);
        if (b.arch.hasDest()) {
            pools_.rollback(b.arch.dest, b.poolPrevSlot);
            // The slot reverts to holding its previous (committed)
            // value; without this a never-written slot would poison
            // any future reader with an eternal not-ready.
            regReady_[b.destPhys] = 0;
        }
        rob_.pop_back();
        ++squashed_n;
    }
    if (tracer_)
        tracer_->instant(obs::TraceCat::Squash, "divergence_squash",
                         now, squashed_n, replay_.valid);

    // Recompute the last unit that still contains live work.
    Trace *t = replay_.trace;
    std::uint32_t last = 0;
    for (std::uint32_t ui = 0; ui < t->units.size(); ++ui) {
        const IssueUnit &u = t->units[ui];
        for (std::uint32_t j = u.firstSlot; j < u.firstSlot + u.count;
             ++j) {
            if (t->slots[j].rank < replay_.valid)
                last = ui;
        }
    }
    replay_.lastUnit = last;

    if (!ecLookupAndQueue(branch.arch.nextPc(), now, branch.arch.seq,
                          1 + params_.ecReadCycles)) {
        // Miss: restart the front-end; the residual valid slots keep
        // draining through the shared back-end stages.
        exitToCreate(now, true);
    }
}

bool
FlywheelCore::replayAllocDone() const
{
    return replay_.allocated >= replay_.allocLimit;
}

bool
FlywheelCore::replayIssueDone() const
{
    return replay_.nextUnit > replay_.lastUnit ||
           replay_.nextUnit >= replay_.trace->units.size();
}

void
FlywheelCore::maybeHandleReplayEnd(Tick now)
{
    if (!replayActive() || replay_.endHandled)
        return;
    if (!replayAllocDone() || !replayIssueDone())
        return;
    if (replay_.divergent && !replay_.divergenceResolved)
        return;  // the diverging branch has not reached Execute yet

    replay_.endHandled = true;
    if (!replay_.divergent) {
        // Clean trace completion: with the SRT the next trace starts
        // one cycle after the swap; without it, the FRT forces a wait
        // until the last instruction retires.
        Addr next_pc = stream_.peek(0).pc;
        Tick extra = params_.srtEnabled ? 1 : 1 + params_.ecReadCycles;
        InstSeqNum after = params_.srtEnabled
            ? 0
            : replay_.baseSeq + replay_.valid - 1;
        if (!ecLookupAndQueue(next_pc, now, after, extra))
            exitToCreate(now, true);
    }
    finishReplay(now);
}

void
FlywheelCore::finishReplay(Tick now)
{
    Trace *t = replay_.trace;
    ec_.unpin(t->startPc);
    if (tracer_)
        tracer_->instant(obs::TraceCat::Replay, "replay_finish", now,
                         replay_.valid, replay_.divergent ? 1 : 0);

    // Trace quality policy: rebuild stale traces (recorded while the
    // predictor was cold or under different loop bounds) rather than
    // replaying them forever.
    if (params_.traceRebuildPolicy) {
        const bool too_short = !replay_.divergent &&
            t->length() < params_.minTraceInstrs / 2;
        const bool early_diverge = replay_.divergent &&
            replay_.valid * 4 < t->length();
        if ((too_short || early_diverge) &&
            (!pending_.valid || pending_.trace != t)) {
            ec_.erase(t->startPc);
        }
    }
    replay_.reset();
}

void
FlywheelCore::exitToCreate(Tick now, bool resume_fetch)
{
    if (tracer_ && mode_ == Mode::Exec) {
        tracer_->instant(obs::TraceCat::EcMode, "ec_exit", now);
        tracer_->instant(obs::TraceCat::ClockPlan, "be_base", now,
                         beBase_);
    }
    mode_ = Mode::Create;
    beCur_ = beBase_;
    nextFe_ = ((now / feP_) + 1) * feP_;
    needNewTrace_ = true;
    if (resume_fetch) {
        // Restart crosses the domain boundary (one BE cycle sync).
        resumeFetch(now + beFast_ + feP_);
    }
}

// ---------------------------------------------------------------------------
// Dynamic register redistribution (Section 3.5 / [12]).
// ---------------------------------------------------------------------------

void
FlywheelCore::maybeRedistribute(Tick now)
{
    // The first counter check runs early (the paper notes steady
    // state is reached rapidly); subsequent checks use the full
    // 500k-cycle interval.
    const std::uint64_t interval = stats_.redistributions == 0
        ? std::min<std::uint64_t>(50000, params_.redistributionInterval)
        : params_.redistributionInterval;
    if (++beCyclesSinceCheck_ >= interval) {
        beCyclesSinceCheck_ = 0;
        double threshold = params_.redistributionStallFrac *
                           double(interval);
        if (double(pools_.stallsSinceCheck()) > threshold)
            redistributionArmed_ = true;
        else
            pools_.resetWindow();
    }

    if (!redistributionArmed_)
        return;
    if (!rob_.empty() || replayActive() || pending_.valid ||
        !feQueue_.empty()) {
        return;
    }

    redistributionArmed_ = false;
    if (pools_.redistribute()) {
        // Pool bases moved: every physical entry now holds a
        // committed (ready) value — nothing is in flight.
        for (auto &r : regReady_)
            r = 0;
        // All recorded renaming information is stale (Section 3.5).
        ec_.invalidateAll();
        builder_ = Builder{};
        finalizing_ = Builder{};
        draining_ = false;
        needNewTrace_ = true;
        ++stats_.redistributions;
        events_.checkpointOps += 2;
        if (tracer_)
            tracer_->instant(obs::TraceCat::ClockPlan, "redistribute",
                             now, stats_.redistributions);
        Tick stall = Tick(params_.redistributionCost) * beBase_;
        if (fetchStallUntil_ != kTickMax)
            fetchStallUntil_ = std::max(fetchStallUntil_, now + stall);
    }
}

// ---------------------------------------------------------------------------
// Clocking.
// ---------------------------------------------------------------------------

void
FlywheelCore::feEdge(Tick now)
{
    ++events_.feCycles;
    events_.feActiveTicks += feP_;
    // New fetches may not enter the ROB before all replay residuals
    // have been allocated (rank order = program order in the ROB).
    if (!replayActive())
        stepDispatch(now, beCur_);
    stepFetch(now, feP_);
}

void
FlywheelCore::beEdge(Tick now)
{
    ++events_.beCycles;
    if (mode_ == Mode::Create) {
        ++events_.iwActiveCycles;
        stepRetire(now, beCur_);
        stepComplete(now, beCur_);
        stepIssue(now, beCur_);
        if (replayActive()) {  // residual drain after an EC miss
            replayAllocate(now);
            replayIssue(now);
            maybeHandleReplayEnd(now);
        }
        maybeCompleteDrain(now);
        maybeRedistribute(now);
        maybeStartPendingReplay(now);
    } else {
        stepRetire(now, beCur_);
        stepComplete(now, beCur_);
        fus_.beginCycle(now);
        replayAllocate(now);
        replayIssue(now);
        maybeHandleReplayEnd(now);
        maybeRedistribute(now);
        maybeStartPendingReplay(now);
    }
}

void
FlywheelCore::run(std::uint64_t n)
{
    const std::uint64_t goal = stats_.retired + n;
    while (stats_.retired < goal) {
        if (mode_ == Mode::Exec || nextBe_ <= nextFe_) {
            const Tick now = nextBe_;
            beEdge(now);
            nextBe_ = now + beCur_;
            if (now > events_.totalTicks)
                events_.totalTicks = now;
            checkProgress(now);
        } else {
            const Tick now = nextFe_;
            feEdge(now);
            nextFe_ = now + feP_;
            if (now > events_.totalTicks)
                events_.totalTicks = now;
        }
    }
}

} // namespace flywheel

/**
 * @file
 * The Flywheel microarchitecture (paper Section 3): a dual-clock
 * out-of-order core with pre-scheduled execution.
 *
 * Two operating modes:
 *
 *  - **Trace creation**: the front-end (Fetch1 Fetch2 Decode Rename
 *    Dispatch) runs in its own clock domain at fePeriodPs; the
 *    back-end (Issue Window, Register Update, RegRead, Execute,
 *    WriteBack, Retire) runs at the baseline period because the
 *    Wake-Up/Select loop is in it.  Dispatch crosses the domain
 *    boundary through the Dual Clock Issue Window with one back-end
 *    cycle of synchronization latency; no wake-up can be lost thanks
 *    to duplicated tag matching (modelled through the physical
 *    readiness scoreboard).  Issued groups are appended to the trace
 *    under construction as Issue Units.
 *
 *  - **Trace execution**: after a trace is found in the Execution
 *    Cache, the whole front-end and the Issue Window are clock gated
 *    and the back-end switches to beFastPeriodPs.  One Issue Unit per
 *    cycle streams from the EC through Register Update and RegRead
 *    directly to the functional units, VLIW-style, with in-order
 *    interlocks on operand readiness.  A replayed branch whose
 *    dynamic direction differs from the recorded path diverges the
 *    trace: younger slots are squashed, and the EC is searched at the
 *    correct target.
 *
 * Trace changes pay the checkpoint costs of the two-phase renaming
 * scheme: with the SRT, a cleanly-ended trace switches in one cycle;
 * a mispredict-ended trace must wait for the offending instruction to
 * retire so the FRT can be copied into the RT.  Pool redistribution
 * runs on the paper's 500k-cycle counters and invalidates the EC.
 *
 * With execCacheEnabled = false this core is the paper's
 * "Register Allocation" configuration (Fig 11): dual-clock issue
 * window plus the two-phase renaming, but no alternative execution
 * path.
 */

#ifndef FLYWHEEL_FLYWHEEL_FLYWHEEL_CORE_HH
#define FLYWHEEL_FLYWHEEL_FLYWHEEL_CORE_HH

#include <memory>

#include "core/core_base.hh"
#include "flywheel/exec_cache.hh"
#include "flywheel/pool_rename.hh"

namespace flywheel {

/** Dual-clock core with pre-scheduled execution. */
class FlywheelCore : public CoreBase
{
  public:
    FlywheelCore(const CoreParams &params, WorkloadStream &stream);

    void run(std::uint64_t n) override;

    /** Fraction of retired instructions served by the EC path. */
    double ecResidency() const;

    const ExecCache &execCache() const { return ec_; }
    const PoolRenameUnit &pools() const { return pools_; }

    /**
     * Mutable Execution Cache access for verification tooling only:
     * fault-injection tests corrupt resident traces through this to
     * prove the replay validation catches them.  Not for simulation
     * code.
     */
    ExecCache &mutableExecCache() { return ec_; }

    void save(Snapshot &snap) const override;
    void restore(const Snapshot &snap) override;

    /**
     * Trace under construction (instructions append as they issue).
     * Public only for the snapshot codec; simulation code treats it
     * as internal.
     */
    struct Builder
    {
        bool active = false;
        bool bounded = false;        ///< endSeq is known
        Addr startPc = 0;
        InstSeqNum startSeq = 0;
        InstSeqNum endSeq = 0;
        std::uint64_t appended = 0;
        std::vector<TraceSlot> slots;
        std::vector<IssueUnit> units;

        std::uint64_t
        expected() const
        {
            return endSeq - startSeq + 1;
        }
    };

  protected:
    bool canRenameDest(const InFlightInst &inst) override;
    void renameSrcs(InFlightInst &inst) override;
    void renameDest(InFlightInst &inst) override;
    void onIssueGroup(const std::vector<InFlightInst *> &group,
                      Tick now) override;
    void onMispredictResolved(InFlightInst &inst, Tick now) override;
    void onRetire(InFlightInst &inst, Tick now) override;
    bool fetchGate(Addr pc, Tick now) override;
    std::string progressDebug() const override;

  private:
    enum class Mode { Create, Exec };

    /** Live replay of one trace. */
    struct Replay
    {
        Trace *trace = nullptr;
        std::vector<DynInst> actual;   ///< consumed correct-path insts
        std::uint32_t valid = 0;       ///< matched prefix length V
        bool divergent = false;        ///< valid < trace length
        bool divergenceResolved = false;
        std::uint32_t nextUnit = 0;
        std::uint32_t allocated = 0;   ///< ranks allocated into the ROB
        std::uint32_t allocLimit = 0;  ///< shrinks to V on divergence
        std::uint32_t lastUnit = 0;    ///< last unit that must issue
        std::uint32_t blocksRead = 0;
        Tick start = 0;
        InstSeqNum baseSeq = 0;
        bool endHandled = false;
        std::vector<InFlightInst *> byRank;

        /** Back to the idle state, keeping vector capacity: replays
         *  start every few hundred cycles, so the buffers are reused
         *  instead of reallocated. */
        void
        reset()
        {
            trace = nullptr;
            actual.clear();
            valid = 0;
            divergent = false;
            divergenceResolved = false;
            nextUnit = 0;
            allocated = 0;
            allocLimit = 0;
            lastUnit = 0;
            blocksRead = 0;
            start = 0;
            baseSeq = 0;
            endHandled = false;
            byRank.clear();
        }
    };

    /** Queued switch to a replay once constraints are met. */
    struct PendingReplay
    {
        bool valid = false;
        Trace *trace = nullptr;
        Tick earliest = 0;
        InstSeqNum afterRetire = 0;  ///< 0 = no retirement constraint
        Tick afterRetireTick = kTickMax;
    };

    // --- per-edge work ----------------------------------------------------
    void feEdge(Tick now);
    void beEdge(Tick now);

    // --- trace building ---------------------------------------------------
    void appendToBuilder(Builder &b,
                         const std::vector<InFlightInst *> &group,
                         Tick now);
    void finalizeBuilder(Builder &b, Tick now);
    void maybeCompleteDrain(Tick now);

    // --- trace replay -----------------------------------------------------
    /** @return true on an EC hit (a pending replay was queued). */
    bool ecLookupAndQueue(Addr pc, Tick now, InstSeqNum after_retire,
                          Tick extra_delay_cycles);
    void maybeStartPendingReplay(Tick now);
    void enterExec(Tick now);
    void replayAllocate(Tick now);
    void replayIssue(Tick now);
    void maybeHandleReplayEnd(Tick now);
    void resolveDivergence(InFlightInst &branch, Tick now);
    void finishReplay(Tick now);
    void exitToCreate(Tick now, bool resume_fetch);
    bool replayActive() const { return replay_.trace != nullptr; }
    bool replayAllocDone() const;
    bool replayIssueDone() const;

    // --- pool redistribution ----------------------------------------------
    void maybeRedistribute(Tick now);

    DynInst synthesizeWrongPath(const TraceSlot &slot,
                                InstSeqNum seq) const;

    PoolRenameUnit pools_;
    ExecCache ec_;

    Mode mode_ = Mode::Create;
    Tick feP_;     // lint: nosnapshot(derived from params in ctor)
    Tick beBase_;  // lint: nosnapshot(derived from params in ctor)
    Tick beFast_;  // lint: nosnapshot(derived from params in ctor)
    Tick beCur_;
    Tick nextFe_ = 0;
    Tick nextBe_ = 0;

    Builder builder_;
    Builder finalizing_;
    bool needNewTrace_ = true;
    bool draining_ = false;
    Addr drainLookupPc_ = 0;

    Replay replay_;
    PendingReplay pending_;

    std::uint64_t beCyclesSinceCheck_ = 0;
    bool redistributionArmed_ = false;

    // Per-cycle scratch for replayIssue (reused, never reallocated on
    // the trace-execution hot path).
    std::vector<InFlightInst *> gatedScratch_;      // lint: nosnapshot(per-cycle scratch)
    std::vector<InFlightInst *> freeSlotsScratch_;  // lint: nosnapshot(per-cycle scratch)
    std::vector<InstSeqNum> coStoresScratch_;       // lint: nosnapshot(per-cycle scratch)
    FunctionalUnits::State fuStateScratch_;         // lint: nosnapshot(per-cycle scratch)
};

} // namespace flywheel

#endif // FLYWHEEL_FLYWHEEL_FLYWHEEL_CORE_HH

/**
 * @file
 * Lifetime-scoped arena allocation for per-run simulator state.
 *
 * A simulated core's restorable state (ROB, front-end queue, LSQ
 * ring, issue-window order array, predictor tables, cache metadata,
 * rename maps, workload lookahead) lives exactly as long as the core
 * itself, and every element type is trivially copyable.  An Arena is
 * a bump allocator matching that lifetime: containers carve
 * contiguous blocks out of large chunks, nothing is freed
 * individually, and the whole region is released when the owning
 * core is destroyed.  The payoff is twofold: hot per-cycle loops
 * walk dense, co-located buffers, and the snapshot binary codec can
 * serialize each container at ~memcpy speed because state is already
 * a small set of contiguous trivially-copyable buffers.
 *
 * ArenaVector is the growable/assignable container (element
 * addresses are NOT stable across growth); ArenaRing is a
 * fixed-capacity circular buffer with stable element addresses, used
 * where other structures hold pointers into the container (the ROB
 * and fetch queue are referenced by the issue window and the
 * issued-pending completion list).
 */

#ifndef FLYWHEEL_COMMON_ARENA_HH
#define FLYWHEEL_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

#include "common/log.hh"

namespace flywheel {

/** Chunked bump allocator; memory is released only on destruction. */
class Arena
{
  public:
    static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
        : chunkBytes_(chunk_bytes)
    {
    }

    ~Arena()
    {
        Chunk *c = head_;
        while (c) {
            Chunk *next = c->next;
            ::operator delete(static_cast<void *>(c));
            c = next;
        }
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Carve @p bytes with @p align from the current chunk. */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        FW_ASSERT(align != 0 && (align & (align - 1)) == 0,
                  "arena alignment must be a power of two");
        if (bytes == 0)
            bytes = 1;
        std::uintptr_t base =
            head_ ? reinterpret_cast<std::uintptr_t>(head_ + 1) +
                        head_->used
                  : 0;
        std::uintptr_t aligned = (base + align - 1) & ~(align - 1);
        std::size_t need = bytes + (aligned - base);
        if (!head_ || head_->used + need > head_->size) {
            grow(bytes + align);
            base = reinterpret_cast<std::uintptr_t>(head_ + 1);
            aligned = (base + align - 1) & ~(align - 1);
            need = bytes + (aligned - base);
        }
        head_->used += need;
        allocated_ += bytes;
        return reinterpret_cast<void *>(aligned);
    }

    /** Typed array allocation (uninitialized storage). */
    template <typename T>
    T *
    allocArray(std::size_t n)
    {
        static_assert(std::is_trivially_copyable<T>::value,
                      "arena containers hold trivially copyable types");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /** Total bytes handed out (excludes chunk slack). */
    std::size_t bytesAllocated() const { return allocated_; }

  private:
    struct Chunk
    {
        Chunk *next;
        std::size_t size;  ///< payload bytes following the header
        std::size_t used;
    };

    void
    grow(std::size_t at_least)
    {
        std::size_t payload = chunkBytes_;
        while (payload < at_least)
            payload *= 2;
        void *mem = ::operator new(sizeof(Chunk) + payload);
        Chunk *c = static_cast<Chunk *>(mem);
        c->next = head_;
        c->size = payload;
        c->used = 0;
        head_ = c;
    }

    Chunk *head_ = nullptr;
    std::size_t chunkBytes_;
    std::size_t allocated_ = 0;
};

/**
 * Growable contiguous array carved from an Arena.  vector-like API
 * over trivially-copyable elements; growth re-carves and memcpys
 * (the old block is abandoned to the arena), so element addresses
 * are NOT stable across push_back/resize/reserve.  reserve(n) sets
 * capacity to exactly n when growing (mirroring reserve-from-empty
 * std::vector behaviour the issue-window compaction timing depends
 * on); a push_back at capacity doubles.
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "ArenaVector requires trivially copyable T");

  public:
    explicit ArenaVector(Arena &arena) : arena_(&arena) {}

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return cap_; }
    bool empty() const { return size_ == 0; }

    T *data() { return data_; }
    const T *data() const { return data_; }
    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T &
    at(std::size_t i)
    {
        FW_ASSERT(i < size_, "ArenaVector index %zu out of %zu", i,
                  size_);
        return data_[i];
    }

    const T &
    at(std::size_t i) const
    {
        FW_ASSERT(i < size_, "ArenaVector index %zu out of %zu", i,
                  size_);
        return data_[i];
    }

    T &front() { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &front() const { return data_[0]; }
    const T &back() const { return data_[size_ - 1]; }

    void clear() { size_ = 0; }

    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            regrow(n);
    }

    void
    resize(std::size_t n)
    {
        if (n > cap_)
            regrow(growthFor(n));
        if (n > size_) {
            if constexpr (std::is_trivially_default_constructible_v<T>)
                std::memset(data_ + size_, 0,
                            (n - size_) * sizeof(T));
            else
                for (std::size_t i = size_; i < n; ++i)
                    data_[i] = T();
        }
        size_ = n;
    }

    void
    resize(std::size_t n, const T &fill)
    {
        if (n > cap_)
            regrow(growthFor(n));
        for (std::size_t i = size_; i < n; ++i)
            data_[i] = fill;
        size_ = n;
    }

    void
    assign(std::size_t n, const T &fill)
    {
        size_ = 0;
        resize(n, fill);
    }

    void
    push_back(const T &v)
    {
        if (size_ == cap_)
            regrow(cap_ ? cap_ * 2 : 8);
        data_[size_++] = v;
    }

    void
    pop_back()
    {
        FW_ASSERT(size_ > 0, "pop_back on empty ArenaVector");
        --size_;
    }

    /** Drop the first @p n elements, shifting the rest down. */
    void
    eraseFront(std::size_t n)
    {
        FW_ASSERT(n <= size_, "eraseFront(%zu) of %zu", n, size_);
        std::memmove(data_, data_ + n, (size_ - n) * sizeof(T));
        size_ -= n;
    }

  private:
    std::size_t
    growthFor(std::size_t need) const
    {
        std::size_t cap = cap_ ? cap_ : 8;
        while (cap < need)
            cap *= 2;
        return cap;
    }

    void
    regrow(std::size_t new_cap)
    {
        T *next = arena_->allocArray<T>(new_cap);
        if (size_)
            std::memcpy(next, data_, size_ * sizeof(T));
        data_ = next;
        cap_ = new_cap;
    }

    Arena *arena_;
    T *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
};

/**
 * Fixed-capacity circular buffer carved from an Arena: deque-like
 * push_back/pop_front/pop_back over a single contiguous block.
 * Capacity is set at construction and never changes, so element
 * addresses are stable for the element's residency (a slot is only
 * rewritten after its element is popped — the same reuse contract a
 * deque gives the ROB's pointer holders).
 */
template <typename T>
class ArenaRing
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "ArenaRing requires trivially copyable T");

  public:
    ArenaRing(Arena &arena, std::size_t capacity)
        : data_(arena.allocArray<T>(capacity)), cap_(capacity)
    {
        FW_ASSERT(capacity > 0, "ArenaRing needs capacity > 0");
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return cap_; }
    bool empty() const { return size_ == 0; }

    T &operator[](std::size_t i) { return data_[wrap(head_ + i)]; }
    const T &operator[](std::size_t i) const
    {
        return data_[wrap(head_ + i)];
    }

    T &
    at(std::size_t i)
    {
        FW_ASSERT(i < size_, "ArenaRing index %zu out of %zu", i,
                  size_);
        return (*this)[i];
    }

    const T &
    at(std::size_t i) const
    {
        FW_ASSERT(i < size_, "ArenaRing index %zu out of %zu", i,
                  size_);
        return (*this)[i];
    }

    T &front() { return data_[head_]; }
    const T &front() const { return data_[head_]; }
    T &back() { return data_[wrap(head_ + size_ - 1)]; }
    const T &back() const { return data_[wrap(head_ + size_ - 1)]; }

    void
    push_back(const T &v)
    {
        FW_ASSERT(size_ < cap_, "ArenaRing overflow (capacity %zu)",
                  cap_);
        data_[wrap(head_ + size_)] = v;
        ++size_;
    }

    /** Append a value-initialized element and return it. */
    T &
    emplace_back()
    {
        FW_ASSERT(size_ < cap_, "ArenaRing overflow (capacity %zu)",
                  cap_);
        T &slot = data_[wrap(head_ + size_)];
        slot = T();
        ++size_;
        return slot;
    }

    void
    pop_front()
    {
        FW_ASSERT(size_ > 0, "pop_front on empty ArenaRing");
        head_ = wrap(head_ + 1);
        --size_;
    }

    void
    pop_back()
    {
        FW_ASSERT(size_ > 0, "pop_back on empty ArenaRing");
        --size_;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Forward iterator in logical (oldest-first) order. */
    template <typename Ring, typename Ref>
    class Iter
    {
      public:
        Iter(Ring *ring, std::size_t i) : ring_(ring), i_(i) {}
        Ref operator*() const { return (*ring_)[i_]; }
        auto operator->() const { return &(*ring_)[i_]; }
        Iter &operator++()
        {
            ++i_;
            return *this;
        }
        bool operator==(const Iter &o) const { return i_ == o.i_; }
        bool operator!=(const Iter &o) const { return i_ != o.i_; }

      private:
        Ring *ring_;
        std::size_t i_;
    };

    using iterator = Iter<ArenaRing, T &>;
    using const_iterator = Iter<const ArenaRing, const T &>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, size_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        return i >= cap_ ? i - cap_ : i;
    }

    T *data_;
    std::size_t cap_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace flywheel

#endif // FLYWHEEL_COMMON_ARENA_HH

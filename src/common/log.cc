#include "common/log.hh"

#include <atomic>
#include <cstdarg>
#include <vector>

namespace flywheel {

namespace {
// Atomic so concurrent runSim() workers may log while another thread
// adjusts verbosity; message emission itself is a single fprintf,
// which POSIX keeps atomic per call.
std::atomic<LogLevel> g_level{LogLevel::Normal};
} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

std::string
formatMsg(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (needed < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_level.load(std::memory_order_relaxed) != LogLevel::Quiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace flywheel

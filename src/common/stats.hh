/**
 * @file
 * Lightweight statistics package.  Components own Counter /
 * Average / Distribution objects and register them with a StatGroup;
 * benches and examples dump groups as name = value tables.
 */

#ifndef FLYWHEEL_COMMON_STATS_HH
#define FLYWHEEL_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace flywheel {

/** Simple monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    /** Overwrite the count (snapshot restore only). */
    void set(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of a sampled quantity. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bucket histogram for distributions such as trace lengths or
 * issue-unit widths.  Values beyond the last bucket are accumulated
 * in an overflow bin.
 */
class Distribution
{
  public:
    Distribution() : Distribution(16, 1) {}

    /** @param buckets number of bins, @param width value range per bin. */
    Distribution(unsigned buckets, unsigned width)
        : width_(width ? width : 1), bins_(buckets, 0)
    {}

    void
    sample(std::uint64_t v)
    {
        std::uint64_t idx = v / width_;
        if (idx >= bins_.size())
            ++overflow_;
        else
            ++bins_[idx];
        sum_ += v;
        ++count_;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? double(sum_) / count_ : 0.0; }
    std::uint64_t max() const { return max_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t> &bins() const { return bins_; }
    unsigned bucketWidth() const { return width_; }

  private:
    unsigned width_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Named collection of statistics.  Components register references to
 * their counters; StatGroup never owns the underlying storage, so
 * component lifetime must cover any dump() call.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(const std::string &stat_name, const Counter &c);
    void add(const std::string &stat_name, const Average &a);
    void add(const std::string &stat_name, const double &d);

    /** Print "group.stat = value" lines. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        enum class Kind { Count, Avg, Double } kind;
        const void *ptr;
    };

    std::string name_;
    std::map<std::string, Entry> entries_;
};

} // namespace flywheel

#endif // FLYWHEEL_COMMON_STATS_HH

/**
 * @file
 * Fundamental scalar types shared by every module of the Flywheel
 * simulator.  The simulation timeline is expressed in picoseconds
 * (Tick) so that multiple clock domains with incommensurate periods
 * can be composed exactly; per-domain time is expressed in Cycles.
 */

#ifndef FLYWHEEL_COMMON_TYPES_HH
#define FLYWHEEL_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace flywheel {

/** Simulated wall-clock time in picoseconds. */
using Tick = std::uint64_t;

/** Per-clock-domain cycle count. */
using Cycle = std::uint64_t;

/** Byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** Architected register index (0 .. NumArchRegs-1). */
using ArchReg = std::uint16_t;

/** Physical register index into the physical register file. */
using PhysReg = std::uint16_t;

/** Logical identifier inside an architected register's rename pool. */
using Lid = std::uint16_t;

/** Monotonically increasing dynamic instruction sequence number. */
using InstSeqNum = std::uint64_t;

/** Sentinel for "no register". */
constexpr ArchReg kNoArchReg = std::numeric_limits<ArchReg>::max();
constexpr PhysReg kNoPhysReg = std::numeric_limits<PhysReg>::max();

/** Sentinel for "never" / "not scheduled". */
constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Number of architected integer + floating point registers modelled. */
constexpr unsigned kNumIntRegs = 32;
constexpr unsigned kNumFpRegs = 32;
constexpr unsigned kNumArchRegs = kNumIntRegs + kNumFpRegs;

/** Instruction word size of the modelled RISC ISA (bytes). */
constexpr unsigned kInstBytes = 4;

} // namespace flywheel

#endif // FLYWHEEL_COMMON_TYPES_HH

/**
 * @file
 * Minimal gem5-style status/error reporting: panic() for simulator
 * bugs (aborts), fatal() for user/configuration errors (exit 1),
 * warn()/inform() for non-fatal conditions.
 */

#ifndef FLYWHEEL_COMMON_LOG_HH
#define FLYWHEEL_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace flywheel {

/** Verbosity levels for inform(); warnings always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Global log verbosity (default Normal). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
std::string formatMsg(const char *fmt, ...);
} // namespace detail

/**
 * Report an internal simulator bug and abort.  Use when a condition
 * can only arise from a defect in the simulator itself.
 */
#define FW_PANIC(...) \
    ::flywheel::detail::panicImpl(__FILE__, __LINE__, \
        ::flywheel::detail::formatMsg(__VA_ARGS__))

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
#define FW_FATAL(...) \
    ::flywheel::detail::fatalImpl(__FILE__, __LINE__, \
        ::flywheel::detail::formatMsg(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define FW_WARN(...) \
    ::flywheel::detail::warnImpl(::flywheel::detail::formatMsg(__VA_ARGS__))

/** Report normal operating status (suppressed when Quiet). */
#define FW_INFORM(...) \
    ::flywheel::detail::informImpl(::flywheel::detail::formatMsg(__VA_ARGS__))

/** Assert a simulator invariant; on failure behaves like FW_PANIC. */
#define FW_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            FW_PANIC("assertion failed: %s — " __VA_ARGS__, #cond); \
        } \
    } while (0)

} // namespace flywheel

#endif // FLYWHEEL_COMMON_LOG_HH

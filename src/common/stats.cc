#include "common/stats.hh"

#include <iomanip>

namespace flywheel {

void
StatGroup::add(const std::string &stat_name, const Counter &c)
{
    entries_[stat_name] = Entry{Entry::Kind::Count, &c};
}

void
StatGroup::add(const std::string &stat_name, const Average &a)
{
    entries_[stat_name] = Entry{Entry::Kind::Avg, &a};
}

void
StatGroup::add(const std::string &stat_name, const double &d)
{
    entries_[stat_name] = Entry{Entry::Kind::Double, &d};
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, entry] : entries_) {
        os << name_ << '.' << stat_name << " = ";
        switch (entry.kind) {
          case Entry::Kind::Count:
            os << static_cast<const Counter *>(entry.ptr)->value();
            break;
          case Entry::Kind::Avg:
            os << std::fixed << std::setprecision(4)
               << static_cast<const Average *>(entry.ptr)->mean();
            break;
          case Entry::Kind::Double:
            os << std::fixed << std::setprecision(4)
               << *static_cast<const double *>(entry.ptr);
            break;
        }
        os << '\n';
    }
}

} // namespace flywheel

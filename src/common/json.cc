#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace flywheel {

namespace {

const Json kEmpty;

/** Format one number deterministically (see Json::write docs). */
void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null so output stays parseable.
        os << "null";
        return;
    }
    double r = std::nearbyint(v);
    if (r == v && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        os << buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
writeString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Recursive-descent parser over a raw character range. */
class Parser
{
  public:
    Parser(const char *p, const char *end) : p_(p), end_(end) {}

    bool
    parse(Json &out, std::string *error)
    {
        if (!value(out)) {
            if (error)
                *error = error_;
            return false;
        }
        skipWs();
        if (p_ != end_) {
            if (error)
                *error = "trailing characters after JSON value";
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r'))
            ++p_;
    }

    bool
    fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = msg;
        return false;
    }

    bool
    literal(const char *text, Json v, Json &out)
    {
        for (const char *t = text; *t; ++t, ++p_) {
            if (p_ == end_ || *p_ != *t)
                return fail(std::string("bad literal, expected ") + text);
        }
        out = std::move(v);
        return true;
    }

    bool
    value(Json &out)
    {
        skipWs();
        if (p_ == end_)
            return fail("unexpected end of input");
        switch (*p_) {
          case 'n': return literal("null", Json(), out);
          case 't': return literal("true", Json(true), out);
          case 'f': return literal("false", Json(false), out);
          case '"': return string(out);
          case '[': return array(out);
          case '{': return object(out);
          default:  return number(out);
        }
    }

    bool
    string(Json &out)
    {
        std::string s;
        if (!rawString(s))
            return false;
        out = Json(std::move(s));
        return true;
    }

    bool
    rawString(std::string &s)
    {
        ++p_; // opening quote
        while (p_ != end_ && *p_ != '"') {
            char c = *p_++;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (p_ == end_)
                return fail("unterminated escape");
            char e = *p_++;
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'u': {
                if (end_ - p_ < 4)
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p_++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (no surrogate pairs;
                // our artifacts are ASCII).
                if (code < 0x80) {
                    s += char(code);
                } else if (code < 0x800) {
                    s += char(0xc0 | (code >> 6));
                    s += char(0x80 | (code & 0x3f));
                } else {
                    s += char(0xe0 | (code >> 12));
                    s += char(0x80 | ((code >> 6) & 0x3f));
                    s += char(0x80 | (code & 0x3f));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        if (p_ == end_)
            return fail("unterminated string");
        ++p_; // closing quote
        return true;
    }

    bool
    number(Json &out)
    {
        const char *start = p_;
        if (p_ != end_ && (*p_ == '-' || *p_ == '+'))
            ++p_;
        while (p_ != end_ &&
               (std::isdigit(static_cast<unsigned char>(*p_)) ||
                *p_ == '.' || *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                *p_ == '+'))
            ++p_;
        if (p_ == start)
            return fail("invalid number");
        std::string text(start, p_);
        char *endp = nullptr;
        double v = std::strtod(text.c_str(), &endp);
        if (endp != text.c_str() + text.size())
            return fail("invalid number: " + text);
        if (!std::isfinite(v))
            return fail("non-finite number: " + text);
        out = Json(v);
        return true;
    }

    /** RAII nesting-depth guard shared by array() and object(). */
    class DepthGuard
    {
      public:
        explicit DepthGuard(Parser &p) : p_(p) { ++p_.depth_; }
        ~DepthGuard() { --p_.depth_; }
        bool ok() const { return p_.depth_ <= Json::kMaxParseDepth; }

      private:
        Parser &p_;
    };

    bool
    array(Json &out)
    {
        DepthGuard depth(*this);
        if (!depth.ok())
            return fail("nesting deeper than the supported maximum");
        ++p_; // '['
        out = Json::array();
        skipWs();
        if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        for (;;) {
            Json elem;
            if (!value(elem))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (p_ == end_)
                return fail("unterminated array");
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == ']') {
                ++p_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    object(Json &out)
    {
        DepthGuard depth(*this);
        if (!depth.ok())
            return fail("nesting deeper than the supported maximum");
        ++p_; // '{'
        out = Json::object();
        skipWs();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        for (;;) {
            skipWs();
            if (p_ == end_ || *p_ != '"')
                return fail("expected object key");
            std::string key;
            if (!rawString(key))
                return false;
            skipWs();
            if (p_ == end_ || *p_ != ':')
                return fail("expected ':' after object key");
            ++p_;
            Json member;
            if (!value(member))
                return false;
            // add(), not set(): the duplicate-key scan would make
            // parsing large objects quadratic.  On (invalid) repeated
            // keys the first occurrence wins at lookup.
            out.add(std::move(key), std::move(member));
            skipWs();
            if (p_ == end_)
                return fail("unterminated object");
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == '}') {
                ++p_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    const char *p_;
    const char *end_;
    int depth_ = 0;
    std::string error_;
};

} // namespace

const Json &
Json::at(std::size_t i) const
{
    return i < arr_.size() ? arr_[i] : kEmpty;
}

const Json &
Json::operator[](const std::string &key) const
{
    for (const auto &m : obj_)
        if (m.first == key)
            return m.second;
    return kEmpty;
}

bool
Json::has(const std::string &key) const
{
    for (const auto &m : obj_)
        if (m.first == key)
            return true;
    return false;
}

bool
Json::take(const std::string &key, Json *out)
{
    for (auto it = obj_.begin(); it != obj_.end(); ++it) {
        if (it->first == key) {
            *out = std::move(it->second);
            // Remove the member entirely: a null-valued ghost would
            // keep has(key) true and serialize as "key": null.
            obj_.erase(it);
            return true;
        }
    }
    return false;
}

void
Json::push(Json v)
{
    kind_ = Kind::Array;
    arr_.push_back(std::move(v));
}

void
Json::set(const std::string &key, Json v)
{
    kind_ = Kind::Object;
    for (auto &m : obj_) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

void
Json::add(std::string key, Json v)
{
    kind_ = Kind::Object;
    obj_.emplace_back(std::move(key), std::move(v));
}

void
Json::writeImpl(std::ostream &os, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            os << '\n';
            for (int i = 0; i < d * indent; ++i)
                os << ' ';
        }
    };
    switch (kind_) {
      case Kind::Null: os << "null"; break;
      case Kind::Bool: os << (bool_ ? "true" : "false"); break;
      case Kind::Number: writeNumber(os, num_); break;
      case Kind::String: writeString(os, str_); break;
      case Kind::Array:
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                os << (indent > 0 ? "," : ", ");
            newline(depth + 1);
            arr_[i].writeImpl(os, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        os << ']';
        break;
      case Kind::Object:
        os << '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                os << (indent > 0 ? "," : ", ");
            newline(depth + 1);
            writeString(os, obj_[i].first);
            os << ": ";
            obj_[i].second.writeImpl(os, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        os << '}';
        break;
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeImpl(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

bool
Json::parse(const std::string &text, Json &out, std::string *error)
{
    Parser p(text.data(), text.data() + text.size());
    return p.parse(out, error);
}

} // namespace flywheel

#include "common/atomic_file.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <fstream>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace flywheel {

namespace {

std::string
uniqueTempPath(const std::string &path)
{
    // pid disambiguates processes sharing a store; the counter
    // disambiguates concurrent writers (threads) within one process.
    static std::atomic<unsigned long> counter{0};
    return path + ".tmp." + std::to_string(long(::getpid())) + "." +
           std::to_string(counter.fetch_add(1));
}

} // namespace

bool
atomicWriteFile(const std::string &path, const std::string &bytes,
                std::string *error)
{
    const std::string tmp = uniqueTempPath(path);
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out) {
            if (error)
                *error = "cannot write " + tmp;
            return false;
        }
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out.good()) {
            if (error)
                *error = "short write to " + tmp;
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "cannot move " + tmp + " into place at " + path;
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
makeDirectories(const std::string &dir)
{
    if (dir.empty())
        return false;
    std::string prefix;
    prefix.reserve(dir.size());
    for (std::size_t i = 0; i <= dir.size(); ++i) {
        if (i < dir.size() && dir[i] != '/') {
            prefix += dir[i];
            continue;
        }
        if (!prefix.empty() &&
            ::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
            struct ::stat st;
            if (::stat(prefix.c_str(), &st) != 0 ||
                !S_ISDIR(st.st_mode))
                return false;
        }
        if (i < dir.size())
            prefix += '/';
    }
    struct ::stat st;
    return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

} // namespace flywheel

/**
 * @file
 * Fixed-width per-lane array: the structure-of-arrays backbone of the
 * batched simulation engine (core/batch.hh).  A lane group keeps its
 * hot per-lane scheduling state in LaneArrays — one contiguous,
 * cache-dense block per field group — while cold per-lane objects
 * (cores, streams, tracers) stay in ordinary owning vectors.
 *
 * Elements must be trivially copyable, mirroring the ArenaVector /
 * ArenaRing snapshot discipline: lane state may be captured with
 * memcpy (and flywheel_lint enforces a same-file static_assert at
 * every use site, exactly as it does for the arena containers).
 */

#ifndef FLYWHEEL_COMMON_LANE_ARRAY_HH
#define FLYWHEEL_COMMON_LANE_ARRAY_HH

#include <cstddef>
#include <memory>
#include <type_traits>

namespace flywheel {

/** Fixed-size array of per-lane state, value-initialized. */
template <typename T>
class LaneArray
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "LaneArray elements are captured with memcpy; keep "
                  "lane state trivially copyable");

  public:
    LaneArray() = default;

    explicit LaneArray(std::size_t lanes) { reset(lanes); }

    /** Drop the old contents and allocate @p lanes fresh elements. */
    void
    reset(std::size_t lanes)
    {
        data_ = std::make_unique<T[]>(lanes);
        size_ = lanes;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T *data() { return data_.get(); }
    const T *data() const { return data_.get(); }

    T *begin() { return data_.get(); }
    T *end() { return data_.get() + size_; }
    const T *begin() const { return data_.get(); }
    const T *end() const { return data_.get() + size_; }

  private:
    std::unique_ptr<T[]> data_;
    std::size_t size_ = 0;
};

} // namespace flywheel

#endif // FLYWHEEL_COMMON_LANE_ARRAY_HH

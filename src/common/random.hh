/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis.  A small PCG32 implementation is used instead of
 * <random> engines so that streams are reproducible across standard
 * library implementations (std::mt19937 distributions are not
 * portable across vendors).
 */

#ifndef FLYWHEEL_COMMON_RANDOM_HH
#define FLYWHEEL_COMMON_RANDOM_HH

#include <cstdint>

namespace flywheel {

/**
 * PCG32 (O'Neill) generator: 64-bit state, 32-bit output, excellent
 * statistical quality for its size and fully deterministic.
 */
class Pcg32
{
  public:
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t seq = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (seq << 1u) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint32_t
    range(std::uint32_t lo, std::uint32_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish positive integer with mean approximately
     * @p mean, capped at @p cap — used for run lengths (dependency
     * distances, block sizes) where a long tail is wanted.
     */
    std::uint32_t
    geometric(double mean, std::uint32_t cap)
    {
        if (mean <= 1.0)
            return 1;
        double p = 1.0 / mean;
        std::uint32_t n = 1;
        while (n < cap && !chance(p))
            ++n;
        return n;
    }

    /** Raw generator state (simulator snapshots). */
    struct State
    {
        std::uint64_t state = 0;
        std::uint64_t inc = 0;
    };

    State getState() const { return State{state_, inc_}; }
    void
    setState(const State &s)
    {
        state_ = s.state;
        inc_ = s.inc;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace flywheel

#endif // FLYWHEEL_COMMON_RANDOM_HH

/**
 * @file
 * Atomic whole-file replacement.
 *
 * Both on-disk stores that sweep processes share (the ResultCache
 * JSON file and the Checkpointer's snapshot blobs) are published
 * with write-to-temp + rename(2).  The temp name must be unique per
 * process *and* per call: several workers cold-starting the same key
 * concurrently with a fixed ".tmp" suffix would interleave writes in
 * one temp file and rename a torn hybrid into place.
 */

#ifndef FLYWHEEL_COMMON_ATOMIC_FILE_HH
#define FLYWHEEL_COMMON_ATOMIC_FILE_HH

#include <string>

namespace flywheel {

/**
 * Atomically replace @p path with @p bytes: the content is written
 * to a unique temp file in the same directory and rename(2)d over
 * @p path, so a reader either sees the old file or the new one,
 * never a prefix.  False + *error on IO failure (the temp file is
 * unlinked).
 */
bool atomicWriteFile(const std::string &path, const std::string &bytes,
                     std::string *error = nullptr);

/**
 * mkdir -p: create @p dir and every missing parent; true if @p dir
 * exists as a directory afterwards.  Shared by every on-disk store
 * (checkpoints, serve results, job journals) so a nested store path
 * never makes persists fail silently.
 */
bool makeDirectories(const std::string &dir);

} // namespace flywheel

#endif // FLYWHEEL_COMMON_ATOMIC_FILE_HH

/**
 * @file
 * Minimal JSON value type with a parser and a deterministic writer,
 * used for structured result export and the sweep result cache.  No
 * third-party dependency: the subset implemented (null, bool, finite
 * numbers, strings, arrays, objects) is exactly what the simulator's
 * own artifacts need.
 *
 * Objects preserve insertion order so that serialization is
 * byte-stable: the same data always produces the same bytes,
 * regardless of how many threads produced the data.
 */

#ifndef FLYWHEEL_COMMON_JSON_HH
#define FLYWHEEL_COMMON_JSON_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace flywheel {

/** One JSON value (recursive). */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(double d) : kind_(Kind::Number), num_(d) {}
    Json(int v) : kind_(Kind::Number), num_(v) {}
    Json(unsigned v) : kind_(Kind::Number), num_(v) {}
    Json(std::uint64_t v) : kind_(Kind::Number), num_(double(v)) {}
    Json(std::int64_t v) : kind_(Kind::Number), num_(double(v)) {}
    Json(const char *s) : kind_(Kind::String), str_(s) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }

    bool asBool() const { return bool_; }
    double asDouble() const { return num_; }
    /**
     * Number as uint64, saturating: negative values clamp to 0 and
     * values at or beyond 2^64 clamp to UINT64_MAX (the double
     * nearest UINT64_MAX is exactly 2^64, so a serialized UINT64_MAX
     * round-trips through the clamp).  Avoids the undefined
     * out-of-range double->integer conversion.
     */
    std::uint64_t
    asU64() const
    {
        if (!(num_ > 0.0))
            return 0;
        if (num_ >= 18446744073709551616.0)  // 2^64
            return std::numeric_limits<std::uint64_t>::max();
        return std::uint64_t(num_);
    }
    const std::string &asString() const { return str_; }

    /** Array element access (empty Json if out of range). */
    const Json &at(std::size_t i) const;
    std::size_t size() const { return arr_.size(); }
    const std::vector<Json> &items() const { return arr_; }

    /** Object member access (empty Json if absent). */
    const Json &operator[](const std::string &key) const;
    bool has(const std::string &key) const;
    /**
     * Move a member's value out of an object (true if present).  For
     * large documents — simulator snapshots — where copying the
     * subtree out of the parse result would double peak memory and
     * cost a full deep copy.
     */
    bool take(const std::string &key, Json *out);
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return obj_;
    }

    /** Append to an array value. */
    void push(Json v);
    /** Set (insert or overwrite) an object member. */
    void set(const std::string &key, Json v);
    /**
     * Append an object member without the duplicate-key scan.  O(1)
     * versus set()'s O(members); the caller guarantees @p key is not
     * already present (bulk building from known-unique keys).
     */
    void add(std::string key, Json v);

    /**
     * Serialize.  @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact single-line form.  Number
     * formatting is locale-independent and value-deterministic:
     * integral values in the exactly-representable range print
     * without a decimal point, everything else as shortest-round-trip
     * %.17g.
     */
    void write(std::ostream &os, int indent = 0) const;
    std::string dump(int indent = 0) const;

    /**
     * Parse @p text.  On success returns true and fills @p out; on
     * failure returns false and describes the problem in @p error.
     * Non-finite numbers (NaN/Infinity literals or overflowing
     * exponents) are rejected, and container nesting deeper than
     * kMaxParseDepth fails cleanly instead of overflowing the stack.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *error = nullptr);

    /** Maximum array/object nesting depth parse() accepts. */
    static constexpr int kMaxParseDepth = 128;

  private:
    void writeImpl(std::ostream &os, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace flywheel

#endif // FLYWHEEL_COMMON_JSON_HH

#include "branch/btb.hh"

#include "common/log.hh"
#include "obs/stats_registry.hh"
#include "snapshot/bincodec.hh"

namespace flywheel {

Btb::Btb(Arena &arena, const BtbParams &params)
    : params_(params), entries_(arena)
{
    FW_ASSERT(params_.entries % params_.assoc == 0,
              "BTB entries must divide evenly into ways");
    numSets_ = params_.entries / params_.assoc;
    FW_ASSERT((numSets_ & (numSets_ - 1)) == 0,
              "BTB set count must be a power of 2");
    entries_.resize(params_.entries);
}

std::optional<Addr>
Btb::lookup(Addr pc) const
{
    ++lookups_;
    ++useClock_;
    unsigned set = static_cast<unsigned>(pc >> 2) & (numSets_ - 1);
    Entry *base = &entries_[static_cast<std::size_t>(set) *
                            params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].pc == pc) {
            ++hits_;
            base[w].lastUse = useClock_;
            return base[w].target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    ++useClock_;
    unsigned set = static_cast<unsigned>(pc >> 2) & (numSets_ - 1);
    Entry *base = &entries_[static_cast<std::size_t>(set) * params_.assoc];
    Entry *victim = base;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lastUse = useClock_;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lastUse = useClock_;
}

void
Btb::regStats(StatGroup &group) const
{
    group.add("btb.lookups", lookups_);
    group.add("btb.hits", hits_);
}

void
Btb::registerStats(obs::StatsGroup &group) const
{
    group.counter("lookups", lookups_);
    group.counter("hits", hits_);
    group.formula("hitRate", [this] {
        return lookups_.value()
                   ? double(hits_.value()) / double(lookups_.value())
                   : 0.0;
    });
}

void
Btb::save(BinWriter &w) const
{
    // Field-by-field: Entry has padding bytes.
    w.u64(entries_.size());
    for (const Entry &e : entries_) {
        w.u64(e.pc);
        w.u64(e.target);
        w.b(e.valid);
        w.u64(e.lastUse);
    }
    w.u64(useClock_);
    w.u64(lookups_.value());
    w.u64(hits_.value());
}

void
Btb::restore(BinReader &r)
{
    const std::uint64_t count = r.u64();
    FW_ASSERT(count == entries_.size(),
              "BTB snapshot geometry mismatch");
    for (Entry &e : entries_) {
        e.pc = r.u64();
        e.target = r.u64();
        e.valid = r.b();
        e.lastUse = r.u64();
    }
    useClock_ = r.u64();
    lookups_.set(r.u64());
    hits_.set(r.u64());
}

} // namespace flywheel

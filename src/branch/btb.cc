#include "branch/btb.hh"

#include "common/log.hh"
#include "obs/stats_registry.hh"
#include "snapshot/snapshot.hh"

namespace flywheel {

Btb::Btb(const BtbParams &params)
    : params_(params)
{
    FW_ASSERT(params_.entries % params_.assoc == 0,
              "BTB entries must divide evenly into ways");
    numSets_ = params_.entries / params_.assoc;
    FW_ASSERT((numSets_ & (numSets_ - 1)) == 0,
              "BTB set count must be a power of 2");
    entries_.resize(params_.entries);
}

std::optional<Addr>
Btb::lookup(Addr pc) const
{
    ++lookups_;
    ++useClock_;
    unsigned set = static_cast<unsigned>(pc >> 2) & (numSets_ - 1);
    Entry *base = &entries_[static_cast<std::size_t>(set) *
                            params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].pc == pc) {
            ++hits_;
            base[w].lastUse = useClock_;
            return base[w].target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    ++useClock_;
    unsigned set = static_cast<unsigned>(pc >> 2) & (numSets_ - 1);
    Entry *base = &entries_[static_cast<std::size_t>(set) * params_.assoc];
    Entry *victim = base;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lastUse = useClock_;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lastUse = useClock_;
}

void
Btb::regStats(StatGroup &group) const
{
    group.add("btb.lookups", lookups_);
    group.add("btb.hits", hits_);
}

void
Btb::registerStats(obs::StatsGroup &group) const
{
    group.counter("lookups", lookups_);
    group.counter("hits", hits_);
    group.formula("hitRate", [this] {
        return lookups_.value()
                   ? double(hits_.value()) / double(lookups_.value())
                   : 0.0;
    });
}

void
Btb::save(Json &out) const
{
    out = Json::object();
    // One packed [pc, target, valid, lastUse] tuple per entry.
    std::vector<std::uint64_t> entries;
    entries.reserve(entries_.size() * 4);
    for (const Entry &e : entries_) {
        entries.push_back(e.pc);
        entries.push_back(e.target);
        entries.push_back(e.valid ? 1 : 0);
        entries.push_back(e.lastUse);
    }
    out.add("entries", packedU64Json(entries));
    out.add("useClock", useClock_);
    out.add("lookups", lookups_.value());
    out.add("hits", hits_.value());
}

void
Btb::restore(const Json &in)
{
    std::vector<std::uint64_t> entries;
    packedU64From(in["entries"], &entries);
    FW_ASSERT(entries.size() == entries_.size() * 4,
              "BTB snapshot geometry mismatch");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        entries_[i].pc = entries[i * 4];
        entries_[i].target = entries[i * 4 + 1];
        entries_[i].valid = entries[i * 4 + 2] != 0;
        entries_[i].lastUse = entries[i * 4 + 3];
    }
    useClock_ = in["useClock"].asU64();
    lookups_.set(in["lookups"].asU64());
    hits_.set(in["hits"].asU64());
}

} // namespace flywheel

#include "branch/gshare.hh"

#include "common/log.hh"
#include "obs/stats_registry.hh"
#include "snapshot/bincodec.hh"

namespace flywheel {

Gshare::Gshare(Arena &arena, const GshareParams &params)
    : params_(params), table_(arena)
{
    FW_ASSERT(params_.historyBits <= 16, "history register is 16 bits");
    FW_ASSERT((params_.tableEntries & (params_.tableEntries - 1)) == 0,
              "table size must be a power of 2");
    historyMask_ =
        static_cast<std::uint16_t>((1u << params_.historyBits) - 1);
    tableMask_ = params_.tableEntries - 1;
    table_.assign(params_.tableEntries, 2);  // weakly taken
}

std::uint32_t
Gshare::index(Addr pc, std::uint16_t history) const
{
    return (static_cast<std::uint32_t>(pc >> 2) ^ history) & tableMask_;
}

bool
Gshare::predict(Addr pc) const
{
    ++lookups_;
    return table_[index(pc, history_)] >= 2;
}

void
Gshare::pushHistory(bool taken)
{
    history_ = static_cast<std::uint16_t>(((history_ << 1) | (taken ? 1 : 0))
                                          & historyMask_);
}

void
Gshare::update(Addr pc, std::uint16_t history_at_predict, bool taken)
{
    ++updates_;
    std::uint8_t &ctr = table_[index(pc, history_at_predict)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

void
Gshare::regStats(StatGroup &group) const
{
    group.add("gshare.lookups", lookups_);
    group.add("gshare.updates", updates_);
}

void
Gshare::registerStats(obs::StatsGroup &group) const
{
    group.counter("lookups", lookups_);
    group.counter("updates", updates_);
}

void
Gshare::save(BinWriter &w) const
{
    w.u16(history_);
    w.podArray(table_.data(), table_.size());
    w.u64(lookups_.value());
    w.u64(updates_.value());
}

void
Gshare::restore(BinReader &r)
{
    history_ = r.u16();
    r.podArray(table_.data(), table_.size());
    lookups_.set(r.u64());
    updates_.set(r.u64());
}

} // namespace flywheel

#include "branch/gshare.hh"

#include "common/log.hh"
#include "obs/stats_registry.hh"
#include "snapshot/snapshot.hh"

namespace flywheel {

Gshare::Gshare(const GshareParams &params)
    : params_(params)
{
    FW_ASSERT(params_.historyBits <= 16, "history register is 16 bits");
    FW_ASSERT((params_.tableEntries & (params_.tableEntries - 1)) == 0,
              "table size must be a power of 2");
    historyMask_ =
        static_cast<std::uint16_t>((1u << params_.historyBits) - 1);
    tableMask_ = params_.tableEntries - 1;
    table_.assign(params_.tableEntries, 2);  // weakly taken
}

std::uint32_t
Gshare::index(Addr pc, std::uint16_t history) const
{
    return (static_cast<std::uint32_t>(pc >> 2) ^ history) & tableMask_;
}

bool
Gshare::predict(Addr pc) const
{
    ++lookups_;
    return table_[index(pc, history_)] >= 2;
}

void
Gshare::pushHistory(bool taken)
{
    history_ = static_cast<std::uint16_t>(((history_ << 1) | (taken ? 1 : 0))
                                          & historyMask_);
}

void
Gshare::update(Addr pc, std::uint16_t history_at_predict, bool taken)
{
    ++updates_;
    std::uint8_t &ctr = table_[index(pc, history_at_predict)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

void
Gshare::regStats(StatGroup &group) const
{
    group.add("gshare.lookups", lookups_);
    group.add("gshare.updates", updates_);
}

void
Gshare::registerStats(obs::StatsGroup &group) const
{
    group.counter("lookups", lookups_);
    group.counter("updates", updates_);
}

void
Gshare::save(Json &out) const
{
    out = Json::object();
    out.add("history", std::uint64_t(history_));
    out.add("table", packedU64Json(table_));
    out.add("lookups", lookups_.value());
    out.add("updates", updates_.value());
}

void
Gshare::restore(const Json &in)
{
    history_ = static_cast<std::uint16_t>(in["history"].asU64());
    std::vector<std::uint8_t> table;
    packedU64From(in["table"], &table);
    FW_ASSERT(table.size() == table_.size(),
              "gshare snapshot geometry mismatch");
    table_ = std::move(table);
    lookups_.set(in["lookups"].asU64());
    updates_.set(in["updates"].asU64());
}

} // namespace flywheel

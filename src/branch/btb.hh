/**
 * @file
 * Branch Target Buffer: a small set-associative cache of taken-branch
 * targets.  A predicted-taken branch that misses in the BTB cannot
 * redirect fetch until decode, costing a fetch bubble.
 */

#ifndef FLYWHEEL_BRANCH_BTB_HH
#define FLYWHEEL_BRANCH_BTB_HH

#include <cstdint>
#include <optional>

#include "common/arena.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace flywheel {

namespace obs { class StatsGroup; }
class BinWriter;
class BinReader;

/** BTB geometry. */
struct BtbParams
{
    unsigned entries = 512;
    unsigned assoc = 4;
};

/** Branch target buffer. */
class Btb
{
  public:
    explicit Btb(Arena &arena, const BtbParams &params = {});

    /** Target of the branch at @p pc, if cached. */
    std::optional<Addr> lookup(Addr pc) const;

    /** Install/refresh the target for the branch at @p pc. */
    void update(Addr pc, Addr target);

    void regStats(StatGroup &group) const;

    /** Register lookup/hit counters with the obs registry. */
    void registerStats(obs::StatsGroup &group) const;

    /** Serialize entries, LRU clock and counters. */
    void save(BinWriter &w) const;
    /** Restore state saved by save() (geometry must match). */
    void restore(BinReader &r);

  private:
    struct Entry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    static_assert(std::is_trivially_copyable_v<Entry>,
                  "arena containers memcpy entries on snapshot save");

    BtbParams params_;    // lint: nosnapshot(construction-time config)
    unsigned numSets_;    // lint: nosnapshot(derived from params)
    mutable ArenaVector<Entry> entries_;  ///< lookup refreshes LRU
    mutable std::uint64_t useClock_ = 0;

    mutable Counter lookups_;
    mutable Counter hits_;
};

} // namespace flywheel

#endif // FLYWHEEL_BRANCH_BTB_HH

/**
 * @file
 * G-share conditional branch direction predictor (Table 2: 12 bits of
 * global history, 2048 two-bit counters).  The simulator is
 * trace-driven with fetch stalling on a mispredict, so the global
 * history register only ever sees correct-path outcomes; pattern
 * table counters are updated at retire time, as in the paper
 * (predictor updates travel from Retire to Fetch).
 */

#ifndef FLYWHEEL_BRANCH_GSHARE_HH
#define FLYWHEEL_BRANCH_GSHARE_HH

#include <cstdint>

#include "common/arena.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace flywheel {

namespace obs { class StatsGroup; }
class BinWriter;
class BinReader;

/** Configuration of the direction predictor. */
struct GshareParams
{
    unsigned historyBits = 12;
    unsigned tableEntries = 2048;  ///< 2-bit saturating counters
};

/** G-share direction predictor. */
class Gshare
{
  public:
    explicit Gshare(Arena &arena, const GshareParams &params = {});

    /** Predict direction for the conditional branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Record the architectural outcome into the global history
     * (called at prediction time on the correct path).
     */
    void pushHistory(bool taken);

    /**
     * Train the pattern table for the branch at @p pc with the
     * history that was live when it was predicted.
     */
    void update(Addr pc, std::uint16_t history_at_predict, bool taken);

    /** Current global history (captured at predict, used at update). */
    std::uint16_t history() const { return history_; }

    std::uint64_t lookups() const { return lookups_.value(); }

    void regStats(StatGroup &group) const;

    /** Register lookup/update counters with the obs registry. */
    void registerStats(obs::StatsGroup &group) const;

    /** Serialize history register, pattern table and counters. */
    void save(BinWriter &w) const;
    /** Restore state saved by save() (geometry must match). */
    void restore(BinReader &r);

  private:
    std::uint32_t index(Addr pc, std::uint16_t history) const;

    GshareParams params_;       // lint: nosnapshot(construction-time config)
    std::uint16_t historyMask_; // lint: nosnapshot(derived from params)
    std::uint32_t tableMask_;   // lint: nosnapshot(derived from params)
    std::uint16_t history_ = 0;
    ArenaVector<std::uint8_t> table_;  ///< 2-bit counters

    mutable Counter lookups_;
    Counter updates_;
};

} // namespace flywheel

#endif // FLYWHEEL_BRANCH_GSHARE_HH
